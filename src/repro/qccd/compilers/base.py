"""Shared compiler infrastructure: resources, routing, op emission.

The grid compilers are resource-reservation schedulers: every trap,
junction and shuttle segment is a resource with an ``available_at``
time; an operation starts no earlier than the availability of every
resource it touches.  A shuttle whose path passes through a busy trap
therefore *waits* — that waiting is exactly the "roadblock"
serialization the paper identifies in 2D grids.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.codes.css import CSSCode
from repro.codes.scheduling import StabilizerSchedule
from repro.qccd.hardware import QCCDDevice
from repro.qccd.mapping import QubitPlacement
from repro.qccd.schedule import CompiledSchedule, OpKind
from repro.qccd.timing import OperationTimes

__all__ = ["ResourceTracker", "ShuttleOutcome", "Compiler"]


class ResourceTracker:
    """Earliest-availability bookkeeping for named hardware resources."""

    def __init__(self) -> None:
        self._available_at: dict[str, float] = {}
        self.total_wait_us = 0.0
        self.wait_events = 0

    def available(self, resource: str) -> float:
        return self._available_at.get(resource, 0.0)

    def earliest_start(self, resources, not_before: float = 0.0) -> float:
        start = not_before
        for resource in resources:
            start = max(start, self.available(resource))
        return start

    def reserve(self, resources, start: float, duration: float,
                requested_at: float | None = None) -> float:
        """Mark resources busy during [start, start + duration).

        ``requested_at`` (if given) lets the tracker accumulate how much
        waiting the reservation experienced — the roadblock statistic.
        """
        if requested_at is not None and start > requested_at + 1e-12:
            self.total_wait_us += start - requested_at
            self.wait_events += 1
        end = start + duration
        for resource in resources:
            self._available_at[resource] = max(self.available(resource), end)
        return end


@dataclass
class ShuttleOutcome:
    """Result of routing one ion between traps."""

    finish_us: float
    ops_emitted: int
    waited_us: float = 0.0


@dataclass
class Compiler(abc.ABC):
    """Base class: compile one round of syndrome extraction for a code."""

    times: OperationTimes = field(default_factory=OperationTimes)

    @abc.abstractmethod
    def compile(self, code: CSSCode,
                schedule: StabilizerSchedule | None = None) -> CompiledSchedule:
        """Produce the compiled schedule of one syndrome-extraction round."""

    # ------------------------------------------------------------------
    # Helpers shared by the routing compilers
    # ------------------------------------------------------------------
    def shuttle_ion(self, compiled: CompiledSchedule, device: QCCDDevice,
                    tracker: ResourceTracker, ion: int, source: str,
                    target: str, not_before: float,
                    placement: QubitPlacement) -> float:
        """Emit the atomic operations moving ``ion`` from ``source`` to ``target``.

        Returns the finish time.  The path is the shortest node path on
        the device graph.  Resources reserved per leg:

        * a swap (to bring the ion to the trap edge) and a split at the
          source trap,
        * a move per segment, a crossing per junction, and a transit
          reservation for every intermediate trap (the roadblock point),
        * a merge at the target trap, preceded by a rebalance if the
          target trap is at capacity.
        """
        times = self.times
        path = device.shortest_path(source, target)
        clock = not_before

        # Swap the ion to the edge of its chain, then split it out.
        chain = device.chain_length(source)
        swap_duration = times.swap(chain_length=chain)
        start = tracker.earliest_start([source], clock)
        clock = tracker.reserve([source], start, swap_duration,
                                requested_at=clock)
        compiled.add(OpKind.SWAP, start, swap_duration, (ion,), source)

        start = tracker.earliest_start([source], clock)
        clock = tracker.reserve([source], start, times.split,
                                requested_at=clock)
        compiled.add(OpKind.SPLIT, start, times.split, (ion,), source)

        # Traverse the path.
        for previous, node in zip(path, path[1:]):
            segment = f"seg:{min(previous, node)}|{max(previous, node)}"
            start = tracker.earliest_start([segment], clock)
            clock = tracker.reserve([segment], start, times.move,
                                    requested_at=clock)
            compiled.add(OpKind.MOVE, start, times.move, (ion,), segment)
            if node == target:
                break
            if device.is_junction(node):
                degree = device.junction_crossing_degree(node)
                duration = times.junction_crossing(degree)
                start = tracker.earliest_start([node], clock)
                clock = tracker.reserve([node], start, duration,
                                        requested_at=clock)
                compiled.add(OpKind.JUNCTION_CROSS, start, duration, (ion,),
                             node)
            else:
                # Transit through an intermediate trap: the trap must be
                # free of gates/other shuttles for the transit duration.
                # Passing through an *occupied* trap requires the resident
                # chain to be merged with and split from the transiting
                # ion, which is the expensive "trap roadblock" the paper
                # identifies; an empty trap is traversed at the move cost.
                if device.occupancy(node) > 0:
                    duration = times.merge + times.move + times.split
                    note = "trap roadblock transit"
                else:
                    duration = times.move
                    note = "empty trap transit"
                start = tracker.earliest_start([node], clock)
                clock = tracker.reserve([node], start, duration,
                                        requested_at=clock)
                compiled.add(OpKind.MOVE, start, duration, (ion,), node,
                             note=note)

        # Rebalance if the destination has no free space.
        if device.free_space(target) <= 0:
            clock = self._rebalance(compiled, device, tracker, target, clock,
                                    placement)

        start = tracker.earliest_start([target], clock)
        clock = tracker.reserve([target], start, times.merge,
                                requested_at=clock)
        compiled.add(OpKind.MERGE, start, times.merge, (ion,), target)

        device.place_ion(ion, target, enforce_capacity=False)
        placement.qubit_to_trap[ion] = target
        return clock

    def _rebalance(self, compiled: CompiledSchedule, device: QCCDDevice,
                   tracker: ResourceTracker, trap: str, not_before: float,
                   placement: QubitPlacement) -> float:
        """Move one ion out of a full trap to the nearest trap with space."""
        times = self.times
        victims = device.ions_in(trap)
        if not victims:
            return not_before
        victim = victims[-1]
        destination = self._nearest_trap_with_space(device, trap)
        if destination is None:
            # Nowhere to put the ion: model the cost and over-fill.
            start = tracker.earliest_start([trap], not_before)
            end = tracker.reserve([trap], start, times.rebalance(),
                                  requested_at=not_before)
            compiled.add(OpKind.REBALANCE, start, times.rebalance(), (victim,),
                         trap, note="forced overfill")
            return end
        start = tracker.earliest_start([trap, destination], not_before)
        end = tracker.reserve([trap, destination], start, times.rebalance(),
                              requested_at=not_before)
        compiled.add(OpKind.REBALANCE, start, times.rebalance(), (victim,),
                     f"{trap}->{destination}")
        device.place_ion(victim, destination, enforce_capacity=False)
        placement.qubit_to_trap[victim] = destination
        return end

    @staticmethod
    def _nearest_trap_with_space(device: QCCDDevice, trap: str) -> str | None:
        import networkx as nx

        lengths = nx.single_source_shortest_path_length(device.graph, trap)
        candidates = [
            (distance, node) for node, distance in lengths.items()
            if node != trap and device.is_trap(node)
            and device.free_space(node) > 0
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    def gate_on_trap(self, compiled: CompiledSchedule, device: QCCDDevice,
                     tracker: ResourceTracker, trap: str,
                     qubits: tuple[int, ...], not_before: float,
                     note: str = "") -> float:
        """Reserve a trap for one two-qubit gate and emit the op."""
        duration = self.times.two_qubit_gate(device.chain_length(trap))
        start = tracker.earliest_start([trap], not_before)
        end = tracker.reserve([trap], start, duration, requested_at=not_before)
        compiled.add(OpKind.GATE, start, duration, qubits, trap, note=note)
        return end

    def measure_ancillas(self, compiled: CompiledSchedule, device: QCCDDevice,
                         tracker: ResourceTracker, ancillas,
                         placement: QubitPlacement, not_before: float) -> float:
        """Measure every ancilla in place (serial within a trap, parallel across)."""
        finish = not_before
        for ancilla in ancillas:
            trap = placement.trap_of(ancilla)
            duration = self.times.measurement()
            start = tracker.earliest_start([trap], not_before)
            end = tracker.reserve([trap], start, duration)
            compiled.add(OpKind.MEASUREMENT, start, duration, (ancilla,), trap)
            finish = max(finish, end)
        return finish
