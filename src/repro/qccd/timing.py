"""Operation timing model for QCCD hardware (Section II-B-1).

Default constants follow the paper / QCCDSim:

* split: 80 µs, merge: 80 µs, move across a shuttling zone: 10 µs,
* junction crossing: 10 / 100 / 120 µs for degree 2 / 3 / 4,
* two-qubit gate: constant for chains of up to 12 ions, degrading
  quadratically beyond ~15 ions (the paper notes gate times "scale very
  poorly after capacities greater than around 15"),
* GateSwap: three CX gates; IonSwap: ``s*d + s*(d-1) + 42`` µs where
  ``d`` is the interaction distance of the ion from the chain end.

A uniform ``improvement_factor`` scales gate and shuttling times for the
Figure 18 sensitivity study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["OperationTimes", "SwapKind"]


class SwapKind(enum.Enum):
    """Which physical mechanism implements in-chain reordering swaps."""

    GATE_SWAP = "gate_swap"
    ION_SWAP = "ion_swap"


@dataclass(frozen=True)
class OperationTimes:
    """Timing constants (microseconds) for QCCD atomic operations."""

    split_us: float = 80.0
    merge_us: float = 80.0
    move_us: float = 10.0
    junction_cross_degree2_us: float = 10.0
    junction_cross_degree3_us: float = 100.0
    junction_cross_degree4_us: float = 120.0
    base_two_qubit_gate_us: float = 100.0
    one_qubit_gate_us: float = 5.0
    measurement_us: float = 100.0
    gate_scaling_chain_length: int = 12
    ion_swap_constant_us: float = 42.0
    rebalance_us: float = 300.0
    swap_kind: SwapKind = SwapKind.GATE_SWAP
    #: Uniform fractional reduction r applied to gate and shuttling times
    #: (0 = paper defaults, 0.5 = everything twice as fast).
    improvement_factor: float = 0.0
    #: Fractional reduction applied to junction crossing times only
    #: (Figure 9's optimism knob for the mesh junction network).
    junction_improvement_factor: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.improvement_factor < 1.0:
            raise ValueError("improvement_factor must be in [0, 1)")
        if not 0.0 <= self.junction_improvement_factor < 1.0:
            raise ValueError("junction_improvement_factor must be in [0, 1)")

    # ------------------------------------------------------------------
    def _scaled(self, value: float) -> float:
        return value * (1.0 - self.improvement_factor)

    @property
    def split(self) -> float:
        return self._scaled(self.split_us)

    @property
    def merge(self) -> float:
        return self._scaled(self.merge_us)

    @property
    def move(self) -> float:
        return self._scaled(self.move_us)

    def junction_crossing(self, degree: int) -> float:
        """Crossing time for a junction of the given connectivity degree."""
        if degree <= 2:
            base = self.junction_cross_degree2_us
        elif degree == 3:
            base = self.junction_cross_degree3_us
        else:
            base = self.junction_cross_degree4_us
        return self._scaled(base) * (1.0 - self.junction_improvement_factor)

    def two_qubit_gate(self, chain_length: int = 2) -> float:
        """Two-qubit gate time as a function of the host chain length.

        Constant up to :attr:`gate_scaling_chain_length` ions, then
        growing quadratically — the behaviour the paper cites as the
        limiting factor for dense, few-trap configurations.
        """
        chain_length = max(int(chain_length), 2)
        base = self.base_two_qubit_gate_us
        if chain_length > self.gate_scaling_chain_length:
            ratio = chain_length / self.gate_scaling_chain_length
            base = base * ratio * ratio
        return self._scaled(base)

    def one_qubit_gate(self) -> float:
        return self._scaled(self.one_qubit_gate_us)

    def measurement(self) -> float:
        return self._scaled(self.measurement_us)

    def gate_swap(self, chain_length: int = 2) -> float:
        """In-chain swap implemented as three CX gates."""
        return 3.0 * self.two_qubit_gate(chain_length)

    def ion_swap(self, interaction_distance: int) -> float:
        """Position-based swap: s*d + s*(d-1) + 42 µs (paper, Section IV-D)."""
        distance = max(int(interaction_distance), 1)
        return (
            self.split * distance
            + self.split * (distance - 1)
            + self._scaled(self.ion_swap_constant_us)
        )

    def swap(self, chain_length: int = 2, interaction_distance: int = 1) -> float:
        """Swap cost under the configured :class:`SwapKind`."""
        if self.swap_kind is SwapKind.GATE_SWAP:
            return self.gate_swap(chain_length)
        return self.ion_swap(interaction_distance)

    def rebalance(self) -> float:
        return self._scaled(self.rebalance_us)

    @property
    def combined_shuttle(self) -> float:
        """split + move + degree-2 junction crossing + merge.

        This is the per-step shuttling cost ``s`` in the Cyclone
        worst-case runtime formula of Section IV-A.
        """
        return (
            self.split + self.move + self.junction_crossing(2) + self.merge
        )

    # ------------------------------------------------------------------
    def with_improvement(self, factor: float) -> "OperationTimes":
        """Uniformly reduce gate and shuttling times by ``factor``."""
        return replace(self, improvement_factor=factor)

    def with_junction_improvement(self, factor: float) -> "OperationTimes":
        """Reduce only junction crossing times by ``factor``."""
        return replace(self, junction_improvement_factor=factor)

    def with_swap_kind(self, kind: SwapKind) -> "OperationTimes":
        return replace(self, swap_kind=kind)
