"""A vectorized Pauli-frame simulator.

For stabilizer circuits under Pauli noise, the deviation of a noisy run
from the noiseless reference run is fully captured by a *Pauli frame*:
which X and Z flips each qubit currently carries.  Propagating the frame
through Clifford gates and recording which measurements it flips
reproduces the statistics of detection events and logical-observable
flips exactly — the same trick Stim's frame simulator uses.

Two storage backends propagate all shots simultaneously:

* ``backend="packed"`` (default) — frames, measurement records,
  detectors and observables are bit-packed along the shot axis into
  ``uint64`` words (64 shots per word, see :mod:`repro.linalg.bitops`),
  so every gate is a handful of word-level XORs.
* ``backend="bool"`` — the original one-byte-per-bit boolean layout,
  kept as the reference implementation.

Both backends draw stochastic noise through the *same* RNG calls in the
same order (the Bernoulli comparisons happen on unpacked uniform draws,
which the packed backend then packs), so for a fixed seed their outputs
are bit-identical — a property the test suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.linalg.bitops import (
    WORD_DTYPE,
    bit_mask,
    num_words,
    pack_bits,
    unpack_bits,
)

__all__ = ["FrameSimulator", "SampleResult", "FaultInjection",
           "sample_circuit_shard"]


@dataclass
class SampleResult:
    """Sampled detection events and observable flips.

    ``detectors`` has shape ``(shots, num_detectors)`` and
    ``observables`` shape ``(shots, num_observables)``; both are boolean.
    ``measurements`` (optional) holds the raw measurement-flip record.
    """

    detectors: np.ndarray
    observables: np.ndarray
    measurements: np.ndarray | None = None

    @property
    def shots(self) -> int:
        return int(self.detectors.shape[0])

    def logical_error_count(self) -> int:
        """Number of shots where any observable flipped (no decoding)."""
        if self.observables.size == 0:
            return 0
        return int(self.observables.any(axis=1).sum())


@dataclass(frozen=True)
class FaultInjection:
    """A deterministic fault to inject during propagation (DEM probing).

    The fault applies to exactly one shot row.  ``x_flips`` / ``z_flips``
    are qubit indices whose frame bits get toggled just *before* the
    instruction at ``instruction_index`` executes.  ``measurement_flip``
    optionally names a qubit whose measurement outcome (within that
    instruction, which must then be a measurement) is flipped.
    """

    instruction_index: int
    shot: int
    x_flips: tuple[int, ...] = ()
    z_flips: tuple[int, ...] = ()
    measurement_flip: int | None = None


def sample_circuit_shard(circuit: Circuit, shots: int, seed,
                         backend: str = "packed",
                         return_measurements: bool = False) -> SampleResult:
    """Sample one shard of a circuit-level experiment from its own seed.

    This is the shard-local sampling entry point of the fused
    sample→decode pipeline (:mod:`repro.parallel.pipeline`): every shard
    of a sharded experiment draws its noise from an independent
    ``SeedSequence`` child stream, so the concatenation of shard samples
    is bit-identical no matter which process — parent or any worker —
    executes the shard.  ``seed`` accepts anything
    ``numpy.random.default_rng`` does, including a ``SeedSequence``.
    """
    simulator = FrameSimulator(circuit, seed=seed, backend=backend)
    return simulator.sample(shots, return_measurements=return_measurements)


class FrameSimulator:
    """Samples detection events from an annotated stabilizer circuit."""

    def __init__(self, circuit: Circuit, seed: int | None = None,
                 backend: str = "packed") -> None:
        if backend not in ("packed", "bool"):
            raise ValueError("backend must be 'packed' or 'bool'")
        self.circuit = circuit
        self.backend = backend
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample(self, shots: int, return_measurements: bool = False) -> SampleResult:
        """Sample ``shots`` noisy executions of the circuit."""
        return self._run(shots, sample_noise=True,
                         faults=None, return_measurements=return_measurements)

    def propagate_faults(self, faults: list[FaultInjection],
                         shots: int) -> SampleResult:
        """Propagate deterministic faults with all stochastic noise disabled.

        Each fault touches only its own shot row, so ``shots`` rows give
        the detector/observable signature of ``shots`` independent
        faults in a single vectorized pass.
        """
        by_instruction: dict[int, list[FaultInjection]] = {}
        for fault in faults:
            by_instruction.setdefault(fault.instruction_index, []).append(fault)
        return self._run(shots, sample_noise=False, faults=by_instruction,
                         return_measurements=False)

    # ------------------------------------------------------------------
    def _run(self, shots: int, sample_noise: bool,
             faults: dict[int, list[FaultInjection]] | None,
             return_measurements: bool) -> SampleResult:
        circuit = self.circuit
        num_qubits = circuit.num_qubits
        rng = self._rng
        packed = self.backend == "packed"

        if packed:
            rows = num_words(shots)
            def alloc(columns: int) -> np.ndarray:
                return np.zeros((rows, columns), dtype=WORD_DTYPE)
        else:
            rows = shots
            def alloc(columns: int) -> np.ndarray:
                return np.zeros((rows, columns), dtype=bool)

        def bernoulli(probability: float, width: int) -> np.ndarray:
            """Per-(shot, target) Bernoulli mask in the backend's layout.

            The uniform draw itself is always unpacked so both backends
            consume the RNG identically and stay bit-for-bit comparable.
            """
            draw = rng.random((shots, width)) < probability
            return pack_bits(draw, axis=0) if packed else draw

        def as_layout(mask: np.ndarray) -> np.ndarray:
            return pack_bits(mask, axis=0) if packed else mask

        x_frame = alloc(num_qubits)
        z_frame = alloc(num_qubits)
        measurements = alloc(circuit.num_measurements)
        detectors = alloc(circuit.num_detectors)
        observables = alloc(max(circuit.num_observables, 0))

        measurement_cursor = 0
        detector_cursor = 0

        for instruction_index, ins in enumerate(circuit.instructions):
            pending_measure_flips: list[tuple[int, int]] = []
            if faults and instruction_index in faults:
                for fault in faults[instruction_index]:
                    if packed:
                        word, mask = fault.shot >> 6, bit_mask(fault.shot)
                        if fault.x_flips:
                            x_frame[word, list(fault.x_flips)] ^= mask
                        if fault.z_flips:
                            z_frame[word, list(fault.z_flips)] ^= mask
                    else:
                        if fault.x_flips:
                            x_frame[fault.shot, list(fault.x_flips)] ^= True
                        if fault.z_flips:
                            z_frame[fault.shot, list(fault.z_flips)] ^= True
                    if fault.measurement_flip is not None:
                        pending_measure_flips.append(
                            (fault.shot, fault.measurement_flip)
                        )

            name = ins.name
            targets = list(ins.targets)

            if name == "TICK":
                continue
            if name == "R" or name == "RX":
                x_frame[:, targets] = 0
                z_frame[:, targets] = 0
            elif name == "H":
                x_frame[:, targets], z_frame[:, targets] = (
                    z_frame[:, targets].copy(), x_frame[:, targets].copy()
                )
            elif name == "CX":
                controls = targets[0::2]
                targs = targets[1::2]
                x_frame[:, targs] ^= x_frame[:, controls]
                z_frame[:, controls] ^= z_frame[:, targs]
            elif name in ("M", "MX"):
                flips = x_frame[:, targets] if name == "M" else z_frame[:, targets]
                flips = flips.copy()
                if sample_noise and ins.argument > 0:
                    flips ^= bernoulli(ins.argument, len(targets))
                for shot, qubit in pending_measure_flips:
                    position = targets.index(qubit)
                    if packed:
                        flips[shot >> 6, position] ^= bit_mask(shot)
                    else:
                        flips[shot, position] ^= True
                measurements[
                    :, measurement_cursor:measurement_cursor + len(targets)
                ] = flips
                measurement_cursor += len(targets)
                # After measurement the qubit is in a definite eigenstate of
                # the measured basis; the conjugate frame component is moot.
                if name == "M":
                    z_frame[:, targets] = 0
                else:
                    x_frame[:, targets] = 0
            elif name == "X_ERROR":
                if sample_noise and ins.argument > 0:
                    x_frame[:, targets] ^= bernoulli(ins.argument, len(targets))
            elif name == "Z_ERROR":
                if sample_noise and ins.argument > 0:
                    z_frame[:, targets] ^= bernoulli(ins.argument, len(targets))
            elif name == "DEPOLARIZE1":
                if sample_noise and ins.argument > 0:
                    x_mask, z_mask = self._depolarize1_masks(
                        rng, targets, ins.argument, shots
                    )
                    x_frame[:, targets] ^= as_layout(x_mask)
                    z_frame[:, targets] ^= as_layout(z_mask)
            elif name == "PAULI_CHANNEL_1":
                if sample_noise and any(ins.arguments):
                    x_mask, z_mask = self._pauli_channel1_masks(
                        rng, targets, ins.arguments, shots
                    )
                    x_frame[:, targets] ^= as_layout(x_mask)
                    z_frame[:, targets] ^= as_layout(z_mask)
            elif name == "DEPOLARIZE2":
                if sample_noise and ins.argument > 0:
                    controls = targets[0::2]
                    targs = targets[1::2]
                    xc, zc, xt, zt = self._depolarize2_masks(
                        rng, len(controls), ins.argument, shots
                    )
                    x_frame[:, controls] ^= as_layout(xc)
                    z_frame[:, controls] ^= as_layout(zc)
                    x_frame[:, targs] ^= as_layout(xt)
                    z_frame[:, targs] ^= as_layout(zt)
            elif name == "DETECTOR":
                value = np.zeros(rows, dtype=WORD_DTYPE if packed else bool)
                for record in targets:
                    value ^= measurements[:, record]
                detectors[:, detector_cursor] = value
                detector_cursor += 1
            elif name == "OBSERVABLE_INCLUDE":
                observable = int(ins.argument)
                value = np.zeros(rows, dtype=WORD_DTYPE if packed else bool)
                for record in targets:
                    value ^= measurements[:, record]
                observables[:, observable] ^= value
            else:  # pragma: no cover - guarded by Instruction validation
                raise ValueError(f"unhandled instruction {name}")

        if packed:
            detectors = unpack_bits(detectors, shots, axis=0)
            observables = unpack_bits(observables, shots, axis=0)
            if return_measurements:
                measurements = unpack_bits(measurements, shots, axis=0)

        return SampleResult(
            detectors=detectors,
            observables=observables,
            measurements=measurements if return_measurements else None,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _depolarize1_masks(rng, targets, probability, shots):
        hit = rng.random((shots, len(targets))) < probability
        which = rng.integers(0, 3, size=(shots, len(targets)))
        # which: 0 -> X, 1 -> Y, 2 -> Z
        return hit & (which != 2), hit & (which != 0)

    @staticmethod
    def _pauli_channel1_masks(rng, targets, probabilities, shots):
        px, py, pz = probabilities
        draw = rng.random((shots, len(targets)))
        apply_x = draw < px
        apply_y = (draw >= px) & (draw < px + py)
        apply_z = (draw >= px + py) & (draw < px + py + pz)
        return apply_x | apply_y, apply_z | apply_y

    @staticmethod
    def _depolarize2_masks(rng, num_pairs, probability, shots):
        hit = rng.random((shots, num_pairs)) < probability
        # Pick one of the 15 non-identity two-qubit Paulis uniformly.
        which = rng.integers(1, 16, size=(shots, num_pairs))
        # Bits of `which`: (x_c, z_c, x_t, z_t) — value 0 excluded above.
        return (hit & ((which & 1) != 0), hit & ((which & 2) != 0),
                hit & ((which & 4) != 0), hit & ((which & 8) != 0))
