"""A vectorized Pauli-frame simulator.

For stabilizer circuits under Pauli noise, the deviation of a noisy run
from the noiseless reference run is fully captured by a *Pauli frame*:
which X and Z flips each qubit currently carries.  Propagating the frame
through Clifford gates and recording which measurements it flips
reproduces the statistics of detection events and logical-observable
flips exactly — the same trick Stim's frame simulator uses.  All shots
are propagated simultaneously as boolean numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit

__all__ = ["FrameSimulator", "SampleResult", "FaultInjection"]


@dataclass
class SampleResult:
    """Sampled detection events and observable flips.

    ``detectors`` has shape ``(shots, num_detectors)`` and
    ``observables`` shape ``(shots, num_observables)``; both are boolean.
    ``measurements`` (optional) holds the raw measurement-flip record.
    """

    detectors: np.ndarray
    observables: np.ndarray
    measurements: np.ndarray | None = None

    @property
    def shots(self) -> int:
        return int(self.detectors.shape[0])

    def logical_error_count(self) -> int:
        """Number of shots where any observable flipped (no decoding)."""
        if self.observables.size == 0:
            return 0
        return int(self.observables.any(axis=1).sum())


@dataclass(frozen=True)
class FaultInjection:
    """A deterministic fault to inject during propagation (DEM probing).

    The fault applies to exactly one shot row.  ``x_flips`` / ``z_flips``
    are qubit indices whose frame bits get toggled just *before* the
    instruction at ``instruction_index`` executes.  ``measurement_flip``
    optionally names a qubit whose measurement outcome (within that
    instruction, which must then be a measurement) is flipped.
    """

    instruction_index: int
    shot: int
    x_flips: tuple[int, ...] = ()
    z_flips: tuple[int, ...] = ()
    measurement_flip: int | None = None


class FrameSimulator:
    """Samples detection events from an annotated stabilizer circuit."""

    def __init__(self, circuit: Circuit, seed: int | None = None) -> None:
        self.circuit = circuit
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample(self, shots: int, return_measurements: bool = False) -> SampleResult:
        """Sample ``shots`` noisy executions of the circuit."""
        return self._run(shots, sample_noise=True,
                         faults=None, return_measurements=return_measurements)

    def propagate_faults(self, faults: list[FaultInjection],
                         shots: int) -> SampleResult:
        """Propagate deterministic faults with all stochastic noise disabled.

        Each fault touches only its own shot row, so ``shots`` rows give
        the detector/observable signature of ``shots`` independent
        faults in a single vectorized pass.
        """
        by_instruction: dict[int, list[FaultInjection]] = {}
        for fault in faults:
            by_instruction.setdefault(fault.instruction_index, []).append(fault)
        return self._run(shots, sample_noise=False, faults=by_instruction,
                         return_measurements=False)

    # ------------------------------------------------------------------
    def _run(self, shots: int, sample_noise: bool,
             faults: dict[int, list[FaultInjection]] | None,
             return_measurements: bool) -> SampleResult:
        circuit = self.circuit
        num_qubits = circuit.num_qubits
        rng = self._rng

        x_frame = np.zeros((shots, num_qubits), dtype=bool)
        z_frame = np.zeros((shots, num_qubits), dtype=bool)
        measurements = np.zeros((shots, circuit.num_measurements), dtype=bool)
        detectors = np.zeros((shots, circuit.num_detectors), dtype=bool)
        observables = np.zeros((shots, max(circuit.num_observables, 0)), dtype=bool)

        measurement_cursor = 0
        detector_cursor = 0

        for instruction_index, ins in enumerate(circuit.instructions):
            pending_measure_flips: list[tuple[int, int]] = []
            if faults and instruction_index in faults:
                for fault in faults[instruction_index]:
                    if fault.x_flips:
                        x_frame[fault.shot, list(fault.x_flips)] ^= True
                    if fault.z_flips:
                        z_frame[fault.shot, list(fault.z_flips)] ^= True
                    if fault.measurement_flip is not None:
                        pending_measure_flips.append(
                            (fault.shot, fault.measurement_flip)
                        )

            name = ins.name
            targets = list(ins.targets)

            if name == "TICK":
                continue
            if name == "R" or name == "RX":
                x_frame[:, targets] = False
                z_frame[:, targets] = False
            elif name == "H":
                x_frame[:, targets], z_frame[:, targets] = (
                    z_frame[:, targets].copy(), x_frame[:, targets].copy()
                )
            elif name == "CX":
                controls = targets[0::2]
                targs = targets[1::2]
                x_frame[:, targs] ^= x_frame[:, controls]
                z_frame[:, controls] ^= z_frame[:, targs]
            elif name in ("M", "MX"):
                flips = x_frame[:, targets] if name == "M" else z_frame[:, targets]
                flips = flips.copy()
                if sample_noise and ins.argument > 0:
                    flips ^= rng.random((shots, len(targets))) < ins.argument
                for shot, qubit in pending_measure_flips:
                    position = targets.index(qubit)
                    flips[shot, position] ^= True
                measurements[
                    :, measurement_cursor:measurement_cursor + len(targets)
                ] = flips
                measurement_cursor += len(targets)
                # After measurement the qubit is in a definite eigenstate of
                # the measured basis; the conjugate frame component is moot.
                if name == "M":
                    z_frame[:, targets] = False
                else:
                    x_frame[:, targets] = False
            elif name == "X_ERROR":
                if sample_noise and ins.argument > 0:
                    x_frame[:, targets] ^= (
                        rng.random((shots, len(targets))) < ins.argument
                    )
            elif name == "Z_ERROR":
                if sample_noise and ins.argument > 0:
                    z_frame[:, targets] ^= (
                        rng.random((shots, len(targets))) < ins.argument
                    )
            elif name == "DEPOLARIZE1":
                if sample_noise and ins.argument > 0:
                    self._apply_depolarize1(
                        rng, x_frame, z_frame, targets, ins.argument, shots
                    )
            elif name == "PAULI_CHANNEL_1":
                if sample_noise and any(ins.arguments):
                    self._apply_pauli_channel1(
                        rng, x_frame, z_frame, targets, ins.arguments, shots
                    )
            elif name == "DEPOLARIZE2":
                if sample_noise and ins.argument > 0:
                    self._apply_depolarize2(
                        rng, x_frame, z_frame, targets, ins.argument, shots
                    )
            elif name == "DETECTOR":
                value = np.zeros(shots, dtype=bool)
                for record in targets:
                    value ^= measurements[:, record]
                detectors[:, detector_cursor] = value
                detector_cursor += 1
            elif name == "OBSERVABLE_INCLUDE":
                observable = int(ins.argument)
                value = np.zeros(shots, dtype=bool)
                for record in targets:
                    value ^= measurements[:, record]
                observables[:, observable] ^= value
            else:  # pragma: no cover - guarded by Instruction validation
                raise ValueError(f"unhandled instruction {name}")

        return SampleResult(
            detectors=detectors,
            observables=observables,
            measurements=measurements if return_measurements else None,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_depolarize1(rng, x_frame, z_frame, targets, probability, shots):
        hit = rng.random((shots, len(targets))) < probability
        which = rng.integers(0, 3, size=(shots, len(targets)))
        # which: 0 -> X, 1 -> Y, 2 -> Z
        x_frame[:, targets] ^= hit & (which != 2)
        z_frame[:, targets] ^= hit & (which != 0)

    @staticmethod
    def _apply_pauli_channel1(rng, x_frame, z_frame, targets, probabilities, shots):
        px, py, pz = probabilities
        draw = rng.random((shots, len(targets)))
        apply_x = draw < px
        apply_y = (draw >= px) & (draw < px + py)
        apply_z = (draw >= px + py) & (draw < px + py + pz)
        x_frame[:, targets] ^= apply_x | apply_y
        z_frame[:, targets] ^= apply_z | apply_y

    @staticmethod
    def _apply_depolarize2(rng, x_frame, z_frame, targets, probability, shots):
        controls = targets[0::2]
        targs = targets[1::2]
        num_pairs = len(controls)
        hit = rng.random((shots, num_pairs)) < probability
        # Pick one of the 15 non-identity two-qubit Paulis uniformly.
        which = rng.integers(1, 16, size=(shots, num_pairs))
        # Bits of `which`: (x_c, z_c, x_t, z_t) — value 0 excluded above.
        x_frame[:, controls] ^= hit & ((which & 1) != 0)
        z_frame[:, controls] ^= hit & ((which & 2) != 0)
        x_frame[:, targs] ^= hit & ((which & 4) != 0)
        z_frame[:, targs] ^= hit & ((which & 8) != 0)
