"""Detector error model (DEM) extraction from noisy circuits.

Every stochastic noise instruction in a circuit decomposes into a set of
*elementary faults* (a single Pauli applied at a single location, or a
single measurement-record flip), each occurring with a known
probability.  Because fault propagation is linear over GF(2), the effect
of any combination of faults on the detectors and logical observables is
the XOR of the individual effects.  The DEM therefore consists of:

* a binary check matrix ``H`` (detectors x faults),
* a binary observable matrix ``L`` (observables x faults), and
* a prior probability per fault,

where faults with identical (detector, observable) signatures are merged
(their probabilities combined as the probability of an odd number of
them occurring).  This matrix view is what the BP+OSD decoders consume —
the same role ``stim.Circuit.detector_error_model()`` plays in the
Stim/QuITS toolchain the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.circuits.circuit import Circuit, Instruction
from repro.linalg.bitops import pack_bits
from repro.sim.frame import FrameSimulator, FaultInjection

__all__ = [
    "DetectorErrorModel",
    "DemStructure",
    "DemStructureCache",
    "build_dem_structure",
    "detector_error_model",
]


@dataclass
class DetectorErrorModel:
    """Merged fault mechanisms of a noisy circuit.

    ``check_matrix`` has shape ``(num_detectors, num_mechanisms)``;
    ``observable_matrix`` has shape ``(num_observables, num_mechanisms)``;
    ``priors`` has one probability per mechanism.
    """

    check_matrix: np.ndarray
    observable_matrix: np.ndarray
    priors: np.ndarray

    @property
    def num_detectors(self) -> int:
        return int(self.check_matrix.shape[0])

    @property
    def num_mechanisms(self) -> int:
        return int(self.check_matrix.shape[1])

    @property
    def num_observables(self) -> int:
        return int(self.observable_matrix.shape[0])

    def expected_fault_count(self) -> float:
        """Mean number of triggered mechanisms per shot."""
        return float(self.priors.sum())


@dataclass(frozen=True)
class _ElementaryFault:
    instruction_index: int
    probability: float
    x_flips: tuple[int, ...] = ()
    z_flips: tuple[int, ...] = ()
    measurement_flip: int | None = None


def _enumerate_faults(circuit: Circuit) -> list[_ElementaryFault]:
    faults: list[_ElementaryFault] = []
    for index, ins in enumerate(circuit.instructions):
        faults.extend(_faults_for_instruction(index, ins))
    return [fault for fault in faults if fault.probability > 0]


def _faults_for_instruction(index: int, ins: Instruction) -> list[_ElementaryFault]:
    name = ins.name
    faults: list[_ElementaryFault] = []
    if name == "X_ERROR":
        for qubit in ins.targets:
            faults.append(_ElementaryFault(index, ins.argument, x_flips=(qubit,)))
    elif name == "Z_ERROR":
        for qubit in ins.targets:
            faults.append(_ElementaryFault(index, ins.argument, z_flips=(qubit,)))
    elif name == "DEPOLARIZE1":
        share = ins.argument / 3.0
        for qubit in ins.targets:
            faults.append(_ElementaryFault(index, share, x_flips=(qubit,)))
            faults.append(_ElementaryFault(index, share, x_flips=(qubit,),
                                           z_flips=(qubit,)))
            faults.append(_ElementaryFault(index, share, z_flips=(qubit,)))
    elif name == "PAULI_CHANNEL_1":
        px, py, pz = ins.arguments
        for qubit in ins.targets:
            faults.append(_ElementaryFault(index, px, x_flips=(qubit,)))
            faults.append(_ElementaryFault(index, py, x_flips=(qubit,),
                                           z_flips=(qubit,)))
            faults.append(_ElementaryFault(index, pz, z_flips=(qubit,)))
    elif name == "DEPOLARIZE2":
        share = ins.argument / 15.0
        controls = ins.targets[0::2]
        targs = ins.targets[1::2]
        for control, target in zip(controls, targs):
            for pattern in range(1, 16):
                x_flips = []
                z_flips = []
                if pattern & 1:
                    x_flips.append(control)
                if pattern & 2:
                    z_flips.append(control)
                if pattern & 4:
                    x_flips.append(target)
                if pattern & 8:
                    z_flips.append(target)
                faults.append(_ElementaryFault(
                    index, share,
                    x_flips=tuple(x_flips), z_flips=tuple(z_flips),
                ))
    elif name in ("M", "MX") and ins.argument > 0:
        for qubit in ins.targets:
            faults.append(_ElementaryFault(
                index, ins.argument, measurement_flip=qubit
            ))
    return faults


def _fault_skeleton(circuit: Circuit,
                    faults: list[_ElementaryFault]) -> tuple:
    """Noise-rate-independent fingerprint of a circuit's fault list.

    Two circuits with the same skeleton have elementary faults at the
    same locations with the same Pauli/measurement effects — only the
    probabilities differ — so they share one set of merged detector and
    observable signatures.  Changing a noise rate between zero and
    non-zero changes the skeleton (zero-probability faults are pruned)
    and correctly invalidates any cached structure.
    """
    return (
        circuit.num_detectors,
        circuit.num_observables,
        tuple(
            (fault.instruction_index, fault.x_flips, fault.z_flips,
             fault.measurement_flip)
            for fault in faults
        ),
    )


def _propagate_signatures(circuit: Circuit, faults: list[_ElementaryFault],
                          backend: str, chunk_shots: int):
    """Yield ``(faults_chunk, detector_bits, observable_bits)`` blocks.

    The boolean reference backend propagates every fault in one dense
    pass (one shot row per fault), which materialises an
    ``O(faults x measurements)`` boolean array.  The packed backend
    instead walks the fault list in chunks of ``chunk_shots`` faults,
    each propagated as 64-fault words, so peak memory is bounded by the
    chunk size regardless of how many mechanisms the circuit has.
    """
    if backend == "bool":
        chunk_shots = len(faults)
    for start in range(0, len(faults), chunk_shots):
        chunk = faults[start:start + chunk_shots]
        injections = [
            FaultInjection(
                instruction_index=fault.instruction_index,
                shot=shot,
                x_flips=fault.x_flips,
                z_flips=fault.z_flips,
                measurement_flip=fault.measurement_flip,
            )
            for shot, fault in enumerate(chunk)
        ]
        simulator = FrameSimulator(circuit, backend=backend)
        result = simulator.propagate_faults(injections, shots=len(chunk))
        yield chunk, result.detectors, result.observables


@dataclass(frozen=True)
class DemStructure:
    """Noise-rate-independent part of a detector error model.

    The merged detector/observable signature matrices and the mapping
    from elementary faults to merged columns depend only on *where* the
    circuit's faults live and what they flip — not on their
    probabilities.  Operating-point sweeps (physical error rate,
    latency) therefore build this once per circuit family and recompute
    only the per-point priors via :meth:`priors_for`, skipping the
    frame-propagation pass that dominates DEM extraction.
    """

    check_matrix: np.ndarray
    observable_matrix: np.ndarray
    #: Merged-column index of each elementary fault (-1: no effect on
    #: any detector or observable, so the fault has no column).
    fault_columns: np.ndarray
    skeleton: tuple

    @property
    def num_detectors(self) -> int:
        return int(self.check_matrix.shape[0])

    @property
    def num_mechanisms(self) -> int:
        return int(self.check_matrix.shape[1])

    @cached_property
    def packed_observable_matrix(self) -> np.ndarray:
        """Observable matrix packed along mechanisms, computed once."""
        return pack_bits(self.observable_matrix, axis=1)

    def priors_for(self, probabilities: np.ndarray) -> np.ndarray:
        """Merged per-column priors for one operating point.

        ``probabilities`` holds one probability per elementary fault, in
        fault-enumeration order.  Faults merged into the same column are
        combined as the probability of an odd number of them firing —
        the same accumulation (in the same order) a cold
        :func:`detector_error_model` build performs, so the result is
        bit-identical to an uncached extraction.
        """
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape[0] != self.fault_columns.shape[0]:
            raise ValueError("need one probability per elementary fault")
        priors = np.zeros(self.num_mechanisms, dtype=float)
        for column, probability in zip(self.fault_columns, probabilities):
            if column < 0:
                continue
            existing = priors[column]
            priors[column] = (existing * (1 - probability)
                              + probability * (1 - existing))
        return priors


def build_dem_structure(circuit: Circuit,
                        faults: list[_ElementaryFault] | None = None,
                        backend: str = "packed",
                        chunk_shots: int = 2048) -> DemStructure:
    """Propagate every elementary fault and merge identical signatures.

    This is the expensive half of :func:`detector_error_model`; the
    cheap half (per-point priors) is :meth:`DemStructure.priors_for`.
    """
    if backend not in ("packed", "bool"):
        raise ValueError("backend must be 'packed' or 'bool'")
    if chunk_shots < 1:
        raise ValueError("chunk_shots must be positive")
    if faults is None:
        faults = _enumerate_faults(circuit)
    if not faults:
        return DemStructure(
            check_matrix=np.zeros((circuit.num_detectors, 0), dtype=np.uint8),
            observable_matrix=np.zeros((circuit.num_observables, 0),
                                       dtype=np.uint8),
            fault_columns=np.zeros(0, dtype=np.intp),
            skeleton=_fault_skeleton(circuit, faults),
        )
    merged: dict[bytes, int] = {}
    columns_detectors: list[np.ndarray] = []
    columns_observables: list[np.ndarray] = []
    fault_columns = np.full(len(faults), -1, dtype=np.intp)
    position = 0
    blocks = _propagate_signatures(circuit, faults, backend, chunk_shots)
    for chunk, detector_signatures, observable_signatures in blocks:
        for fault_index in range(len(chunk)):
            detector_bits = detector_signatures[fault_index]
            observable_bits = observable_signatures[fault_index]
            if detector_bits.any() or observable_bits.any():
                key = detector_bits.tobytes() + b"|" + observable_bits.tobytes()
                column = merged.get(key)
                if column is None:
                    column = len(columns_detectors)
                    merged[key] = column
                    # Copy: the bits are views into the chunk's signature
                    # block, and keeping views alive would pin every
                    # chunk's full array, defeating the chunked memory
                    # bound.
                    columns_detectors.append(detector_bits.copy())
                    columns_observables.append(observable_bits.copy())
                fault_columns[position] = column
            position += 1
    if columns_detectors:
        check_matrix = np.array(columns_detectors, dtype=np.uint8).T
        observable_matrix = np.array(columns_observables, dtype=np.uint8).T
    else:
        check_matrix = np.zeros((circuit.num_detectors, 0), dtype=np.uint8)
        observable_matrix = np.zeros((circuit.num_observables, 0),
                                     dtype=np.uint8)
    return DemStructure(
        check_matrix=check_matrix,
        observable_matrix=observable_matrix,
        fault_columns=fault_columns,
        skeleton=_fault_skeleton(circuit, faults),
    )


class DemStructureCache:
    """Reuse one :class:`DemStructure` across circuit-level sweep points.

    ``model_for`` extracts the DEM of a circuit, rebuilding the merged
    signatures only when the circuit's fault skeleton changes; sweeps
    that vary only noise *rates* (the common case — physical error rate
    or latency) pay the fault-propagation cost once.  ``builds`` counts
    structure rebuilds so tests and benchmarks can assert cache hits.
    """

    def __init__(self, backend: str = "packed",
                 chunk_shots: int = 2048) -> None:
        if backend not in ("packed", "bool"):
            raise ValueError("backend must be 'packed' or 'bool'")
        self.backend = backend
        self.chunk_shots = int(chunk_shots)
        self.builds = 0
        self._structure: DemStructure | None = None

    @property
    def structure(self) -> DemStructure | None:
        return self._structure

    def model_for(self, circuit: Circuit) -> DetectorErrorModel:
        """DEM of ``circuit``, reusing cached signatures when valid."""
        faults = _enumerate_faults(circuit)
        skeleton = _fault_skeleton(circuit, faults)
        if self._structure is None or self._structure.skeleton != skeleton:
            self._structure = build_dem_structure(
                circuit, faults=faults, backend=self.backend,
                chunk_shots=self.chunk_shots,
            )
            self.builds += 1
        probabilities = np.array(
            [fault.probability for fault in faults], dtype=float
        )
        return DetectorErrorModel(
            check_matrix=self._structure.check_matrix,
            observable_matrix=self._structure.observable_matrix,
            priors=self._structure.priors_for(probabilities),
        )


def detector_error_model(circuit: Circuit, merge: bool = True,
                         backend: str = "packed",
                         chunk_shots: int = 2048) -> DetectorErrorModel:
    """Extract the detector error model of a noisy circuit.

    Parameters
    ----------
    circuit:
        The noisy annotated circuit.
    merge:
        Merge mechanisms with identical detector/observable signatures
        (default).  Disabling the merge keeps one column per elementary
        fault, which is occasionally useful for debugging.
    backend:
        ``"packed"`` (default) propagates faults 64 per machine word in
        bounded-memory chunks; ``"bool"`` is the dense boolean reference
        path.  Both produce identical models.
    chunk_shots:
        Faults propagated per packed block (ignored by ``"bool"``).
    """
    if backend not in ("packed", "bool"):
        raise ValueError("backend must be 'packed' or 'bool'")
    if chunk_shots < 1:
        raise ValueError("chunk_shots must be positive")
    faults = _enumerate_faults(circuit)

    if not merge:
        if not faults:
            return DetectorErrorModel(
                check_matrix=np.zeros((circuit.num_detectors, 0),
                                      dtype=np.uint8),
                observable_matrix=np.zeros((circuit.num_observables, 0),
                                           dtype=np.uint8),
                priors=np.zeros(0, dtype=float),
            )
        blocks = _propagate_signatures(circuit, faults, backend, chunk_shots)
        detector_columns = []
        observable_columns = []
        for _, detector_bits, observable_bits in blocks:
            detector_columns.append(detector_bits.T.astype(np.uint8))
            observable_columns.append(observable_bits.T.astype(np.uint8))
        return DetectorErrorModel(
            check_matrix=np.hstack(detector_columns),
            observable_matrix=np.hstack(observable_columns),
            priors=np.array([fault.probability for fault in faults]),
        )

    structure = build_dem_structure(circuit, faults=faults, backend=backend,
                                    chunk_shots=chunk_shots)
    return DetectorErrorModel(
        check_matrix=structure.check_matrix,
        observable_matrix=structure.observable_matrix,
        priors=structure.priors_for(
            np.array([fault.probability for fault in faults], dtype=float)
        ),
    )
