"""Stabilizer-circuit simulation.

Two complementary tools:

* :class:`~repro.sim.frame.FrameSimulator` — a vectorized Pauli-frame
  sampler for the annotated circuits of :mod:`repro.circuits`.  It
  produces detection events and logical-observable flips for many shots
  at once, which is all a CSS memory experiment under Pauli noise needs.
* :func:`~repro.sim.dem.detector_error_model` — enumerates every
  elementary fault of a noisy circuit, propagates each one through the
  (noiseless) circuit to find which detectors and observables it flips,
  and merges faults with identical signatures.  The result is the
  check-matrix view of the circuit that the BP+OSD decoders consume.
"""

from repro.sim.frame import FrameSimulator, SampleResult
from repro.sim.dem import (
    DemStructure,
    DemStructureCache,
    DetectorErrorModel,
    build_dem_structure,
    detector_error_model,
)

__all__ = [
    "FrameSimulator",
    "SampleResult",
    "DemStructure",
    "DemStructureCache",
    "DetectorErrorModel",
    "build_dem_structure",
    "detector_error_model",
]
