"""Cyclone reproduction: parallel QCCD codesigns for fault-tolerant memory.

A from-scratch Python reproduction of "Cyclone: Designing Efficient and
Highly Parallel QCCD Architectural Codesigns for Fault Tolerant Quantum
Memory" (HPCA 2026).  The library is organised bottom-up:

``repro.linalg``
    GF(2) linear algebra.
``repro.codes``
    CSS codes (hypergraph product, bivariate bicycle, surface), their
    logical operators and stabilizer measurement schedules.
``repro.circuits`` / ``repro.sim`` / ``repro.noise`` / ``repro.decoders``
    Noisy syndrome-extraction circuits, Pauli-frame sampling, detector
    error models, hardware-aware noise and BP+OSD decoding.
``repro.parallel``
    Multi-process shot sharding: the fused sample→decode pipeline
    (:class:`~repro.parallel.ShardedExperiment`) and decode-only
    sharding (:class:`~repro.parallel.ShardedDecoder`).
``repro.qccd``
    The trapped-ion QCCD hardware simulator: topologies, timing,
    routing and the compilers (baseline grid EJF, dynamic timeslice,
    mesh junction network, Cyclone).
``repro.core``
    Codesigns, memory experiments, spacetime cost and parameter sweeps
    — the pipeline behind every figure in the paper's evaluation.
``repro.campaign``
    Cross-sweep campaign orchestration: a declarative spec of every
    curve, one global shot budget, one shared worker pool, and a
    resumable result store (``repro campaign paper_figures``).
``repro.analysis``
    Higher-level analyses (parallelism bounds, sensitivity studies,
    confusion matrix) used by the benchmark harness.

Quick start::

    from repro import code_by_name, codesign_by_name, logical_error_rate

    code = code_by_name("HGP [[225,9,6]]")
    cyclone = codesign_by_name("cyclone").compile(code)
    baseline = codesign_by_name("baseline").compile(code)
    print(baseline.execution_time_us / cyclone.execution_time_us)

    result = logical_error_rate(code, physical_error_rate=1e-3,
                                round_latency_us=cyclone.execution_time_us,
                                shots=100)
    print(result.logical_error_rate)
"""

from repro.codes import (
    CSSCode,
    code_by_name,
    available_codes,
    hgp_code_names,
    bb_code_names,
    hypergraph_product,
    bivariate_bicycle_code,
    surface_code,
    schedule_for,
)
from repro.core import (
    Codesign,
    codesign_by_name,
    available_codesigns,
    MemoryExperiment,
    MemoryResult,
    PrecisionTarget,
    logical_error_rate,
    spacetime_cost,
    spacetime_comparison,
    sweep_physical_error,
    sweep_architectures,
)
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    SweepSpec,
    load_spec,
    run_campaign,
)
from repro.noise import BaseNoiseModel, HardwareNoiseModel
from repro.parallel import (
    DecoderHandle,
    ExperimentHandle,
    SharedPool,
    ShardedDecoder,
    ShardedExperiment,
)
from repro.qccd import OperationTimes
from repro.qccd.compilers import CycloneCompiler, EJFGridCompiler

__version__ = "1.0.0"

__all__ = [
    "CSSCode",
    "code_by_name",
    "available_codes",
    "hgp_code_names",
    "bb_code_names",
    "hypergraph_product",
    "bivariate_bicycle_code",
    "surface_code",
    "schedule_for",
    "Codesign",
    "codesign_by_name",
    "available_codesigns",
    "MemoryExperiment",
    "MemoryResult",
    "PrecisionTarget",
    "logical_error_rate",
    "spacetime_cost",
    "spacetime_comparison",
    "sweep_physical_error",
    "sweep_architectures",
    "BaseNoiseModel",
    "HardwareNoiseModel",
    "CampaignSpec",
    "ResultStore",
    "SweepSpec",
    "load_spec",
    "run_campaign",
    "DecoderHandle",
    "ExperimentHandle",
    "SharedPool",
    "ShardedDecoder",
    "ShardedExperiment",
    "OperationTimes",
    "CycloneCompiler",
    "EJFGridCompiler",
    "__version__",
]
