"""Figure 20: sensitivity to the choice of baseline compiler.

Three baseline compilers (the paper's baseline, a shuttle-minimizing
variant and a move-batching variant) are run on the same baseline grid
architecture; the figure reports both the realized execution time, the
fully serialized ("unrolled") component-wise times and the achieved
parallelization, with Cyclone shown for contrast.
"""

from __future__ import annotations

from repro.codes.css import CSSCode
from repro.core.codesign import codesign_by_name
from repro.core.results import ResultTable

__all__ = ["compiler_comparison"]

_COMPILERS = ("baseline", "baseline2", "baseline3", "cyclone")


def compiler_comparison(code: CSSCode,
                        compilers: tuple[str, ...] = _COMPILERS) -> ResultTable:
    """Execution time, unrolled components and parallelization per compiler."""
    table = ResultTable(
        title=f"Fig. 20 — compiler sensitivity ({code.name})",
        columns=["compiler", "execution_time_us", "unrolled_total_us",
                 "unrolled_gate_us", "unrolled_shuttle_us",
                 "unrolled_measurement_us", "parallelization_fraction"],
    )
    for name in compilers:
        compiled = codesign_by_name(name).compile(code)
        breakdown = compiled.component_breakdown()
        shuttle = sum(
            breakdown.get(key, 0.0)
            for key in ("split", "move", "junction_cross", "merge",
                        "rebalance", "swap")
        )
        table.add_row(
            compiler=name,
            execution_time_us=compiled.execution_time_us,
            unrolled_total_us=compiled.serialized_time_us,
            unrolled_gate_us=breakdown.get("gate", 0.0),
            unrolled_shuttle_us=shuttle,
            unrolled_measurement_us=breakdown.get("measurement", 0.0),
            parallelization_fraction=compiled.parallelization_fraction,
        )
    return table
