"""Figure 20: sensitivity to the choice of baseline compiler.

Three baseline compilers (the paper's baseline, a shuttle-minimizing
variant and a move-batching variant) are run on the same baseline grid
architecture; the figure reports both the realized execution time, the
fully serialized ("unrolled") component-wise times and the achieved
parallelization, with Cyclone shown for contrast.

The table itself comes from the registered ``compiler_comparison``
sweep kind (:mod:`repro.campaign.kinds`), so the same comparison also
runs inside the ``paper_figures_full`` campaign spec.
"""

from __future__ import annotations

from repro.campaign.kinds import run_sweep_kind
from repro.campaign.spec import SweepSpec
from repro.codes.css import CSSCode
from repro.core.results import ResultTable

__all__ = ["compiler_comparison"]

_COMPILERS = ("baseline", "baseline2", "baseline3", "cyclone")


def compiler_comparison(code: CSSCode,
                        compilers: tuple[str, ...] = _COMPILERS) -> ResultTable:
    """Execution time, unrolled components and parallelization per compiler."""
    sweep = SweepSpec(name="compiler_comparison", code=code.name,
                      kind="compiler_comparison",
                      params={"compilers": list(compilers)})
    return run_sweep_kind(sweep, code=code)
