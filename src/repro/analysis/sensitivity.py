"""Sensitivity studies (Figures 5, 9, 13, 17, 18, 21).

Each function sweeps one architectural or timing knob, recompiles the
affected codesign(s) and — where the paper's figure reports logical
error rates — re-runs the hardware-aware memory experiment with the new
latency.  Every LER-producing sweep accepts ``workers=`` (``0``: one
worker per core) to run the fused sample→decode pipeline across a
process pool shared by all of the sweep's points, and ``pool=`` (a
:class:`~repro.parallel.pipeline.SharedPool`) to share that pool with
*other* sweeps — a campaign running several sensitivity studies spawns
one set of worker processes for all of them.  Results are bit-identical
for any worker count, pooled or not.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.codes.css import CSSCode
from repro.core.codesign import codesign_by_name
from repro.core.memory import MemoryExperiment
from repro.core.results import ResultTable
from repro.parallel.pipeline import SharedPool
from repro.qccd.compilers import CycloneCompiler, EJFGridCompiler
from repro.qccd.timing import OperationTimes, SwapKind

__all__ = [
    "depth_speedup_ler",
    "junction_crossing_sensitivity",
    "trap_arrangement_sensitivity",
    "loose_capacity_sensitivity",
    "operation_time_sensitivity",
    "swap_kind_sensitivity",
]


def _sweep_experiment(code: CSSCode, rounds: int | None, seed: int,
                      workers: int = 1,
                      pool: SharedPool | None = None) -> MemoryExperiment:
    """One experiment per sweep: the space-time structure, decoder graph
    and (for ``workers > 1``) the fused-pipeline worker pool are cached
    inside it, so successive operating points only refresh priors
    instead of rebuilding identical decoders or respawning processes.
    Use as a context manager so the pool is released when the sweep
    ends (an externally owned ``pool=`` survives that release)."""
    return MemoryExperiment(code=code, rounds=rounds, seed=seed,
                            workers=workers, pool=pool)


def _ler(experiment: MemoryExperiment, physical_error_rate: float,
         latency_us: float, shots: int, target_precision=None,
         max_shots: int | None = None) -> float:
    """One streamed LER estimate; ``target_precision`` stops the point
    early once its Wilson half-width is tight enough (deterministic —
    see :mod:`repro.parallel.pipeline`), ``max_shots`` caps the budget."""
    return experiment.run(physical_error_rate, latency_us, shots=shots,
                          target_precision=target_precision,
                          max_shots=max_shots).logical_error_rate


def depth_speedup_ler(code: CSSCode, physical_error_rate: float = 5e-4,
                      speedups: Iterable[float] = (1.0, 2.0, 4.0),
                      shots: int = 200, rounds: int | None = None,
                      seed: int = 0, workers: int = 1,
                      target_precision=None,
                      max_shots: int | None = None,
                      pool: SharedPool | None = None) -> ResultTable:
    """Figure 5: LER improvement when the baseline latency is divided by k.

    The baseline grid schedule is compiled once; its latency is then
    scaled by each speedup factor before the memory experiment runs.
    """
    baseline = codesign_by_name("baseline").compile(code)
    latency = baseline.execution_time_us
    table = ResultTable(
        title=f"Fig. 5 — LER vs baseline depth speedup ({code.name}, "
              f"p={physical_error_rate:g})",
        columns=["speedup", "round_latency_us", "logical_error_rate"],
    )
    with _sweep_experiment(code, rounds, seed, workers, pool) as experiment:
        for speedup in speedups:
            scaled = latency / speedup
            table.add_row(
                speedup=speedup,
                round_latency_us=scaled,
                logical_error_rate=_ler(experiment, physical_error_rate,
                                        scaled, shots,
                                        target_precision, max_shots),
            )
    return table


def junction_crossing_sensitivity(code: CSSCode,
                                  physical_error_rate: float = 1e-4,
                                  reductions: Iterable[float] = (
                                      0.0, 0.3, 0.5, 0.7, 0.9),
                                  shots: int = 200, rounds: int | None = None,
                                  seed: int = 0, workers: int = 1,
                                  target_precision=None,
                                  max_shots: int | None = None,
                                  pool: SharedPool | None = None
                                  ) -> ResultTable:
    """Figure 9: mesh junction network LER vs junction-crossing reduction.

    The baseline grid row is included as the reference the mesh must
    beat (the paper finds the crossover near a 70% reduction).
    """
    table = ResultTable(
        title=f"Fig. 9 — junction crossing sensitivity ({code.name}, "
              f"p={physical_error_rate:g})",
        columns=["design", "junction_reduction", "execution_time_us",
                 "logical_error_rate"],
    )
    with _sweep_experiment(code, rounds, seed, workers, pool) as experiment:
        baseline = codesign_by_name("baseline").compile(code)
        table.add_row(
            design="baseline_grid", junction_reduction=0.0,
            execution_time_us=baseline.execution_time_us,
            logical_error_rate=_ler(experiment, physical_error_rate,
                                    baseline.execution_time_us, shots,
                                    target_precision, max_shots),
        )
        for reduction in reductions:
            times = OperationTimes(junction_improvement_factor=reduction)
            mesh = codesign_by_name("mesh_junction",
                                    times=times).compile(code)
            table.add_row(
                design="mesh_junction", junction_reduction=reduction,
                execution_time_us=mesh.execution_time_us,
                logical_error_rate=_ler(experiment, physical_error_rate,
                                        mesh.execution_time_us, shots,
                                        target_precision, max_shots),
            )
    return table


def trap_arrangement_sensitivity(code: CSSCode,
                                 trap_counts: Iterable[int] | None = None,
                                 physical_error_rate: float = 1e-4,
                                 shots: int = 200, rounds: int | None = None,
                                 include_ler: bool = True,
                                 seed: int = 0, workers: int = 1,
                                 target_precision=None,
                                 max_shots: int | None = None,
                                 pool: SharedPool | None = None
                                 ) -> ResultTable:
    """Figure 13: Cyclone performance across "tight" trap/capacity points.

    Each point is a Cyclone ring with ``x`` traps and just enough
    capacity for its share of data and ancilla ions; one-trap
    configurations degenerate to a single long chain with no shuttling
    (and painfully slow gates), the base form ``x = m/2`` is the
    sparsest, and the optimum usually sits in between.
    """
    m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers)
    if trap_counts is None:
        trap_counts = sorted({1, 9, 25, 64, m_basis // 2, m_basis})
    table = ResultTable(
        title=f"Fig. 13 — Cyclone trap/ion arrangement sensitivity "
              f"({code.name}, p={physical_error_rate:g})",
        columns=["num_traps", "trap_capacity", "chain_length",
                 "execution_time_us", "logical_error_rate"],
    )
    with _sweep_experiment(code, rounds, seed, workers, pool) as experiment:
        for x in trap_counts:
            x = max(1, min(int(x), m_basis)) if m_basis else 1
            compiled = CycloneCompiler(num_traps=x).compile(code)
            row = {
                "num_traps": x,
                "trap_capacity": compiled.metadata["trap_capacity"],
                "chain_length": compiled.metadata["chain_length"],
                "execution_time_us": compiled.execution_time_us,
                "logical_error_rate": float("nan"),
            }
            if include_ler:
                row["logical_error_rate"] = _ler(
                    experiment, physical_error_rate,
                    compiled.execution_time_us, shots,
                    target_precision, max_shots,
                )
            table.add_row(**row)
    return table


def loose_capacity_sensitivity(code: CSSCode,
                               capacities: Iterable[int] = (5, 8, 12, 20),
                               physical_error_rate: float = 1e-4,
                               shots: int = 200, rounds: int | None = None,
                               seed: int = 0, workers: int = 1,
                               target_precision=None,
                               max_shots: int | None = None,
                               pool: SharedPool | None = None) -> ResultTable:
    """Figure 17: baseline LER when given extra ("loose") trap capacity.

    The paper finds negligible improvement, confirming the baseline is
    limited by roadblocks rather than by capacity pressure.
    """
    table = ResultTable(
        title=f"Fig. 17 — baseline sensitivity to loose trap capacity "
              f"({code.name}, p={physical_error_rate:g})",
        columns=["trap_capacity", "execution_time_us", "logical_error_rate"],
    )
    with _sweep_experiment(code, rounds, seed, workers, pool) as experiment:
        for capacity in capacities:
            compiled = EJFGridCompiler(trap_capacity=capacity).compile(code)
            table.add_row(
                trap_capacity=capacity,
                execution_time_us=compiled.execution_time_us,
                logical_error_rate=_ler(experiment, physical_error_rate,
                                        compiled.execution_time_us, shots,
                                        target_precision, max_shots),
            )
    return table


def operation_time_sensitivity(code: CSSCode,
                               reductions: Iterable[float] = (
                                   0.0, 0.25, 0.5, 0.75),
                               physical_error_rate: float = 1e-4,
                               shots: int = 200, rounds: int | None = None,
                               seed: int = 0, workers: int = 1,
                               target_precision=None,
                               max_shots: int | None = None,
                               pool: SharedPool | None = None) -> ResultTable:
    """Figure 18: LER as gate and shuttling times are reduced by r.

    Both the baseline and Cyclone are recompiled with the improved
    operation times; as r grows the gap closes because the code's own
    error-correcting ability becomes the limiting factor.
    """
    table = ResultTable(
        title=f"Fig. 18 — gate/shuttle time reduction sensitivity "
              f"({code.name}, p={physical_error_rate:g})",
        columns=["reduction", "design", "execution_time_us",
                 "logical_error_rate"],
    )
    with _sweep_experiment(code, rounds, seed, workers, pool) as experiment:
        for reduction in reductions:
            times = OperationTimes(improvement_factor=reduction)
            for design in ("baseline", "cyclone"):
                compiled = codesign_by_name(design, times=times).compile(code)
                table.add_row(
                    reduction=reduction,
                    design=design,
                    execution_time_us=compiled.execution_time_us,
                    logical_error_rate=_ler(experiment, physical_error_rate,
                                            compiled.execution_time_us,
                                            shots, target_precision,
                                            max_shots),
                )
    return table


def swap_kind_sensitivity(code: CSSCode,
                          interaction_distance: int = 3) -> ResultTable:
    """Figure 21: IonSWAP vs GateSWAP execution times for both codesigns.

    IonSWAP cost scales with the in-chain interaction distance while
    GateSWAP is three CX gates; the paper finds the baseline prefers
    IonSWAP and Cyclone GateSWAP, with Cyclone keeping its advantage
    either way.
    """
    table = ResultTable(
        title=f"Fig. 21 — IonSWAP vs GateSWAP sensitivity ({code.name})",
        columns=["design", "swap_kind", "execution_time_us"],
    )
    for swap_kind in (SwapKind.GATE_SWAP, SwapKind.ION_SWAP):
        times = OperationTimes(swap_kind=swap_kind)
        for design in ("baseline", "cyclone"):
            compiled = codesign_by_name(design, times=times).compile(code)
            table.add_row(
                design=design,
                swap_kind=swap_kind.value,
                execution_time_us=compiled.execution_time_us,
            )
    del interaction_distance
    return table
