"""Sensitivity studies (Figures 5, 9, 13, 17, 18, 21).

Each function sweeps one architectural or timing knob, recompiles the
affected codesign(s) and — where the paper's figure reports logical
error rates — re-runs the hardware-aware memory experiment with the new
latency.  Every LER-producing sweep accepts ``workers=`` (``0``: one
worker per core) to run the fused sample→decode pipeline across a
process pool shared by all of the sweep's points, and ``pool=`` (a
:class:`~repro.parallel.pipeline.SharedPool`) to share that pool with
*other* sweeps — a campaign running several sensitivity studies spawns
one set of worker processes for all of them.  Results are bit-identical
for any worker count, pooled or not.

These functions are thin wrappers now: each builds a
:class:`~repro.campaign.spec.SweepSpec` for its registered sweep kind
(:mod:`repro.campaign.kinds`) and runs it through
:func:`~repro.campaign.kinds.run_sweep_kind`, which reproduces the
original bespoke loop bit for bit (one
:class:`~repro.core.memory.MemoryExperiment` per sweep, one run per
point in row order).  The same kinds power the ``paper_figures_full``
campaign spec, where every figure shares one global budget and one
result store.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.campaign.kinds import run_sweep_kind
from repro.campaign.spec import SweepSpec
from repro.codes.css import CSSCode
from repro.core.results import ResultTable
from repro.parallel.pipeline import SharedPool

__all__ = [
    "depth_speedup_ler",
    "junction_crossing_sensitivity",
    "trap_arrangement_sensitivity",
    "loose_capacity_sensitivity",
    "operation_time_sensitivity",
    "swap_kind_sensitivity",
]


def _run(kind: str, code: CSSCode, params: dict,
         physical_error_rate: float | None, shots: int,
         rounds: int | None, seed: int, workers: int,
         target_precision, max_shots: int | None,
         pool: SharedPool | None) -> ResultTable:
    sweep = SweepSpec(name=kind, code=code.name, kind=kind,
                      physical_error_rate=physical_error_rate,
                      params=params, rounds=rounds)
    return run_sweep_kind(sweep, code=code, shots=shots, seed=seed,
                          workers=workers, pool=pool,
                          target_precision=target_precision,
                          max_shots=max_shots)


def depth_speedup_ler(code: CSSCode, physical_error_rate: float = 5e-4,
                      speedups: Iterable[float] = (1.0, 2.0, 4.0),
                      shots: int = 200, rounds: int | None = None,
                      seed: int = 0, workers: int = 1,
                      target_precision=None,
                      max_shots: int | None = None,
                      pool: SharedPool | None = None) -> ResultTable:
    """Figure 5: LER improvement when the baseline latency is divided by k.

    The baseline grid schedule is compiled once; its latency is then
    scaled by each speedup factor before the memory experiment runs.
    """
    return _run("depth_speedup", code, {"speedups": list(speedups)},
                physical_error_rate, shots, rounds, seed, workers,
                target_precision, max_shots, pool)


def junction_crossing_sensitivity(code: CSSCode,
                                  physical_error_rate: float = 1e-4,
                                  reductions: Iterable[float] = (
                                      0.0, 0.3, 0.5, 0.7, 0.9),
                                  shots: int = 200, rounds: int | None = None,
                                  seed: int = 0, workers: int = 1,
                                  target_precision=None,
                                  max_shots: int | None = None,
                                  pool: SharedPool | None = None
                                  ) -> ResultTable:
    """Figure 9: mesh junction network LER vs junction-crossing reduction.

    The baseline grid row is included as the reference the mesh must
    beat (the paper finds the crossover near a 70% reduction).
    """
    return _run("junction_crossing", code,
                {"reductions": list(reductions)}, physical_error_rate,
                shots, rounds, seed, workers, target_precision, max_shots,
                pool)


def trap_arrangement_sensitivity(code: CSSCode,
                                 trap_counts: Iterable[int] | None = None,
                                 physical_error_rate: float = 1e-4,
                                 shots: int = 200, rounds: int | None = None,
                                 include_ler: bool = True,
                                 seed: int = 0, workers: int = 1,
                                 target_precision=None,
                                 max_shots: int | None = None,
                                 pool: SharedPool | None = None
                                 ) -> ResultTable:
    """Figure 13: Cyclone performance across "tight" trap/capacity points.

    Each point is a Cyclone ring with ``x`` traps and just enough
    capacity for its share of data and ancilla ions; one-trap
    configurations degenerate to a single long chain with no shuttling
    (and painfully slow gates), the base form ``x = m/2`` is the
    sparsest, and the optimum usually sits in between.
    """
    params = {"include_ler": include_ler}
    if trap_counts is not None:
        params["trap_counts"] = list(trap_counts)
    return _run("trap_arrangement", code, params, physical_error_rate,
                shots, rounds, seed, workers, target_precision, max_shots,
                pool)


def loose_capacity_sensitivity(code: CSSCode,
                               capacities: Iterable[int] = (5, 8, 12, 20),
                               physical_error_rate: float = 1e-4,
                               shots: int = 200, rounds: int | None = None,
                               seed: int = 0, workers: int = 1,
                               target_precision=None,
                               max_shots: int | None = None,
                               pool: SharedPool | None = None) -> ResultTable:
    """Figure 17: baseline LER when given extra ("loose") trap capacity.

    The paper finds negligible improvement, confirming the baseline is
    limited by roadblocks rather than by capacity pressure.
    """
    return _run("loose_capacity", code, {"capacities": list(capacities)},
                physical_error_rate, shots, rounds, seed, workers,
                target_precision, max_shots, pool)


def operation_time_sensitivity(code: CSSCode,
                               reductions: Iterable[float] = (
                                   0.0, 0.25, 0.5, 0.75),
                               physical_error_rate: float = 1e-4,
                               shots: int = 200, rounds: int | None = None,
                               seed: int = 0, workers: int = 1,
                               target_precision=None,
                               max_shots: int | None = None,
                               pool: SharedPool | None = None) -> ResultTable:
    """Figure 18: LER as gate and shuttling times are reduced by r.

    Both the baseline and Cyclone are recompiled with the improved
    operation times; as r grows the gap closes because the code's own
    error-correcting ability becomes the limiting factor.
    """
    return _run("operation_time", code, {"reductions": list(reductions)},
                physical_error_rate, shots, rounds, seed, workers,
                target_precision, max_shots, pool)


def swap_kind_sensitivity(code: CSSCode,
                          interaction_distance: int = 3) -> ResultTable:
    """Figure 21: IonSWAP vs GateSWAP execution times for both codesigns.

    IonSWAP cost scales with the in-chain interaction distance while
    GateSWAP is three CX gates; the paper finds the baseline prefers
    IonSWAP and Cyclone GateSWAP, with Cyclone keeping its advantage
    either way.
    """
    del interaction_distance
    sweep = SweepSpec(name="swap_kind", code=code.name, kind="swap_kind")
    return run_sweep_kind(sweep, code=code)
