"""Higher-level analyses used by the benchmark harness.

Each function here computes the data behind one of the paper's analysis
figures (speedup bars, confusion matrix, sensitivity sweeps, compiler
comparison) and returns plain dictionaries / result tables so the
benchmarks can print the same rows and series the paper plots.
"""

from repro.analysis.parallelism import (
    parallel_vs_serial_speedup,
    speedup_table,
)
from repro.analysis.confusion import confusion_matrix
from repro.analysis.sensitivity import (
    junction_crossing_sensitivity,
    trap_arrangement_sensitivity,
    loose_capacity_sensitivity,
    operation_time_sensitivity,
    swap_kind_sensitivity,
    depth_speedup_ler,
)
from repro.analysis.compilers import compiler_comparison
from repro.analysis.loops import (
    stabilizer_connectivity_graph,
    independent_loop_partition,
    loop_split_cost,
    single_vs_split_loop_table,
)

__all__ = [
    "stabilizer_connectivity_graph",
    "independent_loop_partition",
    "loop_split_cost",
    "single_vs_split_loop_table",
    "parallel_vs_serial_speedup",
    "speedup_table",
    "confusion_matrix",
    "junction_crossing_sensitivity",
    "trap_arrangement_sensitivity",
    "loose_capacity_sensitivity",
    "operation_time_sensitivity",
    "swap_kind_sensitivity",
    "depth_speedup_ler",
    "compiler_comparison",
]
