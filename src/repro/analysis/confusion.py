"""Figure 6: the software x hardware confusion matrix.

Software is either *static* (the gate DAG scheduled earliest-job-first)
or *dynamic* (maximally parallel timeslices dispatched together);
hardware is either a *grid* or a *circle*.  Only the coordinated
dynamic-software + circular-hardware pairing (Cyclone) avoids
roadblocks; the other three cells are progressively worse, which is the
paper's case for codesign.
"""

from __future__ import annotations

from repro.codes.css import CSSCode
from repro.core.codesign import codesign_by_name
from repro.core.results import ResultTable
from repro.qccd.timing import OperationTimes

__all__ = ["confusion_matrix"]


def confusion_matrix(code: CSSCode,
                     times: OperationTimes | None = None) -> ResultTable:
    """Execution times for the four software/hardware pairings of Figure 6."""
    times = times or OperationTimes()
    cells = [
        ("static", "grid", codesign_by_name("baseline", times=times)),
        ("dynamic", "grid",
         codesign_by_name("baseline_grid_dynamic", times=times)),
        ("static", "circle", codesign_by_name("ejf_ring", times=times)),
        ("dynamic", "circle", codesign_by_name("cyclone", times=times)),
    ]
    table = ResultTable(
        title=f"Fig. 6 — software/hardware confusion matrix ({code.name})",
        columns=["software", "hardware", "codesign", "execution_time_us",
                 "roadblock_events"],
    )
    for software, hardware, codesign in cells:
        compiled = codesign.compile(code)
        table.add_row(
            software=software,
            hardware=hardware,
            codesign=codesign.name,
            execution_time_us=compiled.execution_time_us,
            roadblock_events=compiled.metadata.get("roadblock_events", 0),
        )
    return table
