"""Figure 3: speedup of maximally parallel vs fully serial schedules.

The motivational case study compares, for each HGP and BB code, the
depth of the maximally parallel syndrome-extraction schedule with the
fully serialized one.  The speedup grows with code size, which is the
paper's argument that architectures must support high parallelism.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.codes.css import CSSCode
from repro.codes.library import bb_code_names, code_by_name, hgp_code_names
from repro.codes.scheduling import parallelism_bound
from repro.core.results import ResultTable

__all__ = ["parallel_vs_serial_speedup", "speedup_table"]


def parallel_vs_serial_speedup(code: CSSCode) -> dict[str, float]:
    """Serial depth, parallel depth and their ratio for one code."""
    bound = parallelism_bound(code)
    return {
        "code": code.name,
        "num_qubits": float(code.num_qubits),
        "num_stabilizers": float(code.num_stabilizers),
        "serial_depth": bound["serial_depth"],
        "parallel_depth": bound["parallel_depth"],
        "speedup": bound["speedup"],
    }


def speedup_table(code_names: Iterable[str] | None = None) -> ResultTable:
    """The Figure 3 bar data for the paper's code set (or a custom one)."""
    if code_names is None:
        code_names = list(hgp_code_names()[:3]) + list(bb_code_names())
    table = ResultTable(
        title="Fig. 3 — fully parallel vs fully serial schedule speedup",
        columns=["code", "num_qubits", "num_stabilizers", "serial_depth",
                 "parallel_depth", "speedup"],
    )
    for name in code_names:
        table.add_row(**parallel_vs_serial_speedup(code_by_name(name)))
    return table
