"""Independent / concurrent loop analysis (Section IV-C).

Cyclone routes every ancilla around a single global loop.  The paper
briefly considers splitting the stabilizers across several smaller
loops executed concurrently, and concludes that for HGP and BB codes no
useful split exists: their long-range stabilizers always share data
qubits across any partition, so ancillas would have to traverse both
loops, adding shuttling, space and roadblock opportunities.  Separate
loops only make sense for local topological codes (disconnected or
easily cut Tanner graphs).

This module provides the graph analysis behind that argument:

* :func:`stabilizer_connectivity_graph` — stabilizers as nodes, edges
  between stabilizers sharing a data qubit;
* :func:`independent_loop_partition` — the connected components, i.e.
  the only splits that require no cross-loop traffic;
* :func:`loop_split_cost` — a cost model for *forcing* a split into a
  given number of loops: each shared data qubit makes some ancilla
  traverse both loops, and the estimate charges the extra rotations;
* :func:`single_vs_split_loop_table` — the ablation table showing the
  single global loop is never worse for the paper's codes.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.codes.css import CSSCode
from repro.core.results import ResultTable
from repro.qccd.compilers.cyclone import cyclone_worst_case_bound_us
from repro.qccd.timing import OperationTimes

__all__ = [
    "stabilizer_connectivity_graph",
    "independent_loop_partition",
    "loop_split_cost",
    "single_vs_split_loop_table",
]


def stabilizer_connectivity_graph(code: CSSCode) -> nx.Graph:
    """Graph over stabilizers with edges between support-sharing pairs."""
    graph = nx.Graph()
    supports = [set(support) for _, support in code.stabilizer_supports()]
    graph.add_nodes_from(range(len(supports)))
    for i, support_i in enumerate(supports):
        for j in range(i + 1, len(supports)):
            if support_i & supports[j]:
                graph.add_edge(i, j)
    return graph


def independent_loop_partition(code: CSSCode) -> list[list[int]]:
    """Stabilizer groups that share no data qubits (connected components).

    A code admits genuinely independent loops only if this returns more
    than one group; for every HGP and BB code in the paper it returns a
    single group.
    """
    graph = stabilizer_connectivity_graph(code)
    return [sorted(component) for component in nx.connected_components(graph)]


def _balanced_greedy_split(code: CSSCode, num_loops: int) -> list[list[int]]:
    """Force a balanced split of stabilizers into ``num_loops`` groups.

    Greedy BFS growth over the stabilizer connectivity graph; used only
    to *evaluate* how bad a forced split would be, not as a proposal.
    """
    graph = stabilizer_connectivity_graph(code)
    total = graph.number_of_nodes()
    target = math.ceil(total / num_loops)
    unassigned = set(graph.nodes)
    groups: list[list[int]] = []
    while unassigned and len(groups) < num_loops:
        seed = min(unassigned)
        group = [seed]
        unassigned.discard(seed)
        frontier = [seed]
        while frontier and len(group) < target:
            node = frontier.pop(0)
            for neighbor in graph.neighbors(node):
                if neighbor in unassigned and len(group) < target:
                    unassigned.discard(neighbor)
                    group.append(neighbor)
                    frontier.append(neighbor)
            if not frontier and unassigned and len(group) < target:
                extra = min(unassigned)
                unassigned.discard(extra)
                group.append(extra)
                frontier.append(extra)
        groups.append(sorted(group))
    if unassigned:
        groups[-1].extend(sorted(unassigned))
    return groups


def loop_split_cost(code: CSSCode, num_loops: int,
                    times: OperationTimes | None = None) -> dict[str, float]:
    """Estimated worst-case execution cost of splitting Cyclone into loops.

    Each loop is a base-form Cyclone ring over the data qubits its
    stabilizers touch.  Data qubits appearing in more than one loop
    force the affected ancillas to traverse the other loop as well; the
    estimate charges one extra full rotation of the larger loop per
    affected loop pair, which is the cheapest conceivable realisation of
    the cross-traffic the paper describes.
    """
    times = times or OperationTimes()
    if num_loops < 1:
        raise ValueError("need at least one loop")
    supports = [set(support) for _, support in code.stabilizer_supports()]

    if num_loops == 1:
        m_basis = max(code.num_x_stabilizers, code.num_z_stabilizers)
        bound = cyclone_worst_case_bound_us(code, max(m_basis, 1), times)
        return {
            "num_loops": 1.0,
            "shared_data_qubits": 0.0,
            "estimated_time_us": bound,
            "extra_rotations": 0.0,
        }

    groups = _balanced_greedy_split(code, num_loops)
    data_by_group = [
        set().union(*(supports[s] for s in group)) if group else set()
        for group in groups
    ]
    loop_times = []
    for group, data in zip(groups, data_by_group):
        if not group:
            continue
        # A loop behaves like a base Cyclone over its own stabilizers/data.
        traps = max(math.ceil(len(group) / 2), 1)
        ancilla_per_trap = 1
        data_per_trap = max(math.ceil(len(data) / traps), 1)
        chain = data_per_trap + ancilla_per_trap
        gate = times.two_qubit_gate(chain)
        swap = times.swap(chain_length=chain)
        shuttle = times.combined_shuttle if traps > 1 else 0.0
        loop_times.append(
            2 * traps * (shuttle + ancilla_per_trap *
                         (swap + gate * data_per_trap))
        )

    shared = 0
    for i in range(len(data_by_group)):
        for j in range(i + 1, len(data_by_group)):
            shared += len(data_by_group[i] & data_by_group[j])

    base_time = max(loop_times) if loop_times else 0.0
    # Every loop pair with shared data needs at least one extra traversal
    # of the partner loop by the affected ancillas.
    pairs_with_sharing = sum(
        1
        for i in range(len(data_by_group))
        for j in range(i + 1, len(data_by_group))
        if data_by_group[i] & data_by_group[j]
    )
    extra = pairs_with_sharing * base_time
    return {
        "num_loops": float(num_loops),
        "shared_data_qubits": float(shared),
        "estimated_time_us": base_time + extra,
        "extra_rotations": float(pairs_with_sharing),
    }


def single_vs_split_loop_table(code: CSSCode,
                               loop_counts=(1, 2, 4),
                               times: OperationTimes | None = None
                               ) -> ResultTable:
    """Section IV-C ablation: single global loop vs forced splits."""
    table = ResultTable(
        title=f"Section IV-C — single vs split Cyclone loops ({code.name})",
        columns=["num_loops", "independent_components",
                 "shared_data_qubits", "extra_rotations",
                 "estimated_time_us"],
    )
    components = len(independent_loop_partition(code))
    for count in loop_counts:
        cost = loop_split_cost(code, count, times)
        table.add_row(
            num_loops=int(cost["num_loops"]),
            independent_components=components,
            shared_data_qubits=cost["shared_data_qubits"],
            extra_rotations=cost["extra_rotations"],
            estimated_time_us=cost["estimated_time_us"],
        )
    return table
