"""Deterministic fault injection for the execution stack.

The execution stack claims to survive worker death, shard timeouts,
torn store tails and mid-campaign SIGTERM *bit-identically* — a claim
worth nothing without a way to inject exactly those faults on demand.
A :class:`FaultPlan` is a small declarative schedule of faults:

* ``kills`` — task submission ordinals; the worker process that picks
  up the N-th task submitted to a pipeline pool exits hard
  (``os._exit``), breaking the pool mid-shard;
* ``delays`` — ordinal → seconds; the worker sleeps before running the
  shard (pair with ``shard_timeout`` to exercise timeout recovery);
* ``tear_after_records`` — after that many successful
  :class:`~repro.campaign.store.ResultStore` appends, the next append
  writes only half its line (no newline) and raises
  :class:`InjectedFault` — a simulated crash mid-write;
* ``sigterm_after_points`` — after that many campaign points have been
  finalised to the store, the orchestrator raises
  ``CampaignInterrupted`` through the same checkpoint the real
  SIGINT/SIGTERM handlers use, exercising the identical
  flush/cancel/release path without delivering an OS signal;
* ``kill_after_claims`` — a *joined* campaign process dies hard
  (:class:`InjectedFault` from the claim loop) after successfully
  claiming that many leases, leaving live leases to expire and be
  reclaimed by surviving workers;
* ``suppress_heartbeats`` — a mode, not a one-shot: the joined worker
  skips every lease renewal, so its leases expire mid-point and other
  workers usurp them (the worker detects the loss at its next
  heartbeat check and forfeits the point);
* ``duplicate_claim`` — before the N-th claim this process makes, a
  phantom claim record for the same key from a fake rival worker is
  appended first, forcing the claim race to resolve by file order;
* ``tear_lease_after`` — like ``tear_after_records`` but counting
  *lease* appends (claim/renew/release), so lease-log corruption can
  be injected without disturbing result-record fault schedules.

Faults are **attached parent-side**: the parent consults the active
plan at each pool submission and ships the fault (if any) inside the
task, so workers never parse plans and spawned processes need no
environment propagation.  Each fault fires at most once — the retried
shard runs clean, which is what lets the recovery machinery converge.

Activation
----------
* tests/library: ``with activate(plan): ...`` (an explicit ``None``
  deactivates injection for the block);
* CLI: ``repro campaign --fault-plan '<json>'`` (or ``@path``);
* environment: ``REPRO_FAULT_PLAN`` with the same JSON-or-``@path``
  syntax, read once and cached.

The fault-free path pays one module-global read per *run*, never per
shard: :func:`active_plan` is cheap and everything else is gated on the
plan being non-``None``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "activate",
    "active_plan",
    "apply_task_fault",
]


class InjectedFault(RuntimeError):
    """An injected fault firing — never raised on a clean run."""


@dataclass
class FaultPlan:
    """A deterministic schedule of faults to inject into one run.

    The plan is mutable on purpose: it owns a submission counter and a
    fired-set, so each fault fires exactly once no matter how often the
    recovery machinery re-submits work.  ``describe`` strings appear in
    raised :class:`InjectedFault` messages for log forensics.
    """

    kills: tuple[int, ...] = ()
    delays: dict[int, float] = field(default_factory=dict)
    tear_after_records: int | None = None
    sigterm_after_points: int | None = None
    kill_after_claims: int | None = None
    suppress_heartbeats: bool = False
    duplicate_claim: int | None = None
    tear_lease_after: int | None = None
    _submitted: int = field(default=0, repr=False)
    _fired: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        self.kills = tuple(int(k) for k in self.kills)
        self.delays = {int(k): float(v) for k, v in self.delays.items()}
        if any(k < 0 for k in self.kills):
            raise ValueError("kill ordinals must be non-negative")
        if any(k < 0 or v < 0 for k, v in self.delays.items()):
            raise ValueError("delay ordinals and durations must be "
                             "non-negative")

    # ------------------------------------------------------------------
    # Parent-side hooks.
    def next_task_fault(self) -> tuple | None:
        """The fault for the next pool submission, consuming its ordinal.

        Returns ``("kill",)``, ``("delay", seconds)`` or ``None``; each
        ordinal is consulted exactly once per submission, across every
        pipeline run sharing this plan.
        """
        ordinal = self._submitted
        self._submitted += 1
        if ordinal in self.kills and ("kill", ordinal) not in self._fired:
            self._fired.add(("kill", ordinal))
            return ("kill",)
        if ordinal in self.delays and ("delay", ordinal) not in self._fired:
            self._fired.add(("delay", ordinal))
            return ("delay", self.delays[ordinal])
        return None

    def take_store_tear(self, appends_so_far: int) -> bool:
        """True exactly once, when the append after ``tear_after_records``
        successful appends is about to happen."""
        if (self.tear_after_records is not None
                and appends_so_far >= self.tear_after_records
                and "tear" not in self._fired):
            self._fired.add("tear")
            return True
        return False

    def take_lease_kill(self, claims_appended: int) -> bool:
        """True exactly once, when this process has appended
        ``kill_after_claims`` successful claim records."""
        if (self.kill_after_claims is not None
                and claims_appended >= self.kill_after_claims
                and "lease_kill" not in self._fired):
            self._fired.add("lease_kill")
            return True
        return False

    def heartbeats_suppressed(self) -> bool:
        """True while heartbeat suppression is planned (a mode: holds
        for the whole run, unlike the fire-once faults)."""
        return self.suppress_heartbeats

    def take_duplicate_claim(self, claim_ordinal: int) -> bool:
        """True exactly once, just before this process's
        ``duplicate_claim``-th claim append — the caller appends a
        phantom rival claim first so the race resolves by file order."""
        if (self.duplicate_claim is not None
                and claim_ordinal >= self.duplicate_claim
                and "dup_claim" not in self._fired):
            self._fired.add("dup_claim")
            return True
        return False

    def take_lease_tear(self, lease_appends: int) -> bool:
        """True exactly once, when the lease append after
        ``tear_lease_after`` successful lease appends is about to
        happen (counted separately from result-record appends)."""
        if (self.tear_lease_after is not None
                and lease_appends >= self.tear_lease_after
                and "lease_tear" not in self._fired):
            self._fired.add("lease_tear")
            return True
        return False

    def take_sigterm(self, points_finalized: int) -> bool:
        """True exactly once, when ``points_finalized`` reaches the
        planned interrupt point."""
        if (self.sigterm_after_points is not None
                and points_finalized >= self.sigterm_after_points
                and "sigterm" not in self._fired):
            self._fired.add("sigterm")
            return True
        return False

    # ------------------------------------------------------------------
    # JSON round-trip (the CLI/env wire format).
    def to_dict(self) -> dict:
        payload: dict = {}
        if self.kills:
            payload["kills"] = list(self.kills)
        if self.delays:
            payload["delays"] = {str(k): v for k, v in self.delays.items()}
        if self.tear_after_records is not None:
            payload["tear_after_records"] = self.tear_after_records
        if self.sigterm_after_points is not None:
            payload["sigterm_after_points"] = self.sigterm_after_points
        if self.kill_after_claims is not None:
            payload["kill_after_claims"] = self.kill_after_claims
        if self.suppress_heartbeats:
            payload["suppress_heartbeats"] = True
        if self.duplicate_claim is not None:
            payload["duplicate_claim"] = self.duplicate_claim
        if self.tear_lease_after is not None:
            payload["tear_lease_after"] = self.tear_lease_after
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        known = {"kills", "delays", "tear_after_records",
                 "sigterm_after_points", "kill_after_claims",
                 "suppress_heartbeats", "duplicate_claim",
                 "tear_lease_after"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys {sorted(unknown)}")
        return cls(
            kills=tuple(payload.get("kills", ())),
            delays=dict(payload.get("delays", {})),
            tear_after_records=payload.get("tear_after_records"),
            sigterm_after_points=payload.get("sigterm_after_points"),
            kill_after_claims=payload.get("kill_after_claims"),
            suppress_heartbeats=bool(payload.get("suppress_heartbeats",
                                                 False)),
            duplicate_claim=payload.get("duplicate_claim"),
            tear_lease_after=payload.get("tear_lease_after"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_arg(cls, arg: str) -> "FaultPlan":
        """Parse a CLI/env value: inline JSON, or ``@path`` to a file."""
        arg = arg.strip()
        if arg.startswith("@"):
            return cls.from_json(Path(arg[1:]).read_text())
        return cls.from_json(arg)


# ----------------------------------------------------------------------
# Activation: an explicit plan (tests, CLI) wins over the environment.

#: Sentinel distinguishing "nothing activated" from "activated None"
#: (the latter disables env-based injection inside the block).
_UNSET = object()
_ACTIVE: object = _UNSET
_ENV_PLAN: object = _UNSET


def _env_plan() -> FaultPlan | None:
    global _ENV_PLAN
    if _ENV_PLAN is _UNSET:
        raw = os.environ.get("REPRO_FAULT_PLAN")
        _ENV_PLAN = FaultPlan.from_arg(raw) if raw else None
    return _ENV_PLAN


def active_plan() -> FaultPlan | None:
    """The fault plan in effect, or ``None`` on a clean run."""
    if _ACTIVE is not _UNSET:
        return _ACTIVE  # type: ignore[return-value]
    return _env_plan()


@contextmanager
def activate(plan: FaultPlan | None):
    """Install ``plan`` as the active fault plan for the block.

    ``activate(None)`` suppresses any environment-provided plan — the
    way a test guarantees a clean reference run.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def reset_env_cache() -> None:
    """Forget the cached ``REPRO_FAULT_PLAN`` parse (test helper)."""
    global _ENV_PLAN
    _ENV_PLAN = _UNSET


# ----------------------------------------------------------------------
# Worker-side execution of a shipped fault.

def apply_task_fault(fault: tuple | None) -> None:
    """Execute a fault shipped inside a pool task (worker side).

    ``("kill",)`` exits the worker process without cleanup — the
    closest deterministic stand-in for an OOM kill or segfault, and
    exactly what makes ``ProcessPoolExecutor`` raise
    ``BrokenProcessPool`` on every pending future.  ``("delay", s)``
    sleeps before the shard runs.
    """
    if fault is None:
        return
    if fault[0] == "kill":
        os._exit(1)
    if fault[0] == "delay":
        time.sleep(float(fault[1]))
        return
    raise ValueError(f"unknown injected fault {fault!r}")
