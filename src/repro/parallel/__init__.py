"""Multi-process shot sharding for the decode hot path.

Shots of a memory experiment are statistically independent, so the
decode of a large syndrome batch splits into shard-sized slices that
worker processes handle concurrently — bit-identically to an in-process
decode, for any worker count.  See :mod:`repro.parallel.sharded` for the
design and `docs/performance.md` for the measured scaling.
"""

from repro.parallel.sharded import (
    DecoderHandle,
    ShardedDecoder,
    resolve_workers,
)

__all__ = [
    "DecoderHandle",
    "ShardedDecoder",
    "resolve_workers",
]
