"""Multi-process shot sharding for the simulation/decoding hot path.

Shots of a memory experiment are statistically independent, so the shot
axis shards across worker processes — bit-identically to an in-process
run, for any worker count.  Two layers are available:

* :class:`ShardedExperiment` — the fused sample→decode pipeline: each
  worker samples its own shard (from a shard-indexed
  ``SeedSequence.spawn`` tree) and decodes it locally, so syndromes
  never cross a process boundary.  This is what
  :class:`~repro.core.memory.MemoryExperiment` runs on.
* :class:`ShardedDecoder` — decode-only sharding for callers that
  already hold a syndrome batch (e.g. syndromes replayed from disk or
  produced by an external sampler).

See :mod:`repro.parallel.pipeline` / :mod:`repro.parallel.sharded` for
the designs and `docs/performance.md` for the measured scaling.
"""

from repro.parallel.pipeline import (
    ExperimentHandle,
    PipelineResult,
    SharedPool,
    ShardedExperiment,
    circuit_fingerprint,
    handle_fingerprint,
    shard_layout,
    shard_seed_tree,
)
from repro.parallel.sharded import (
    DecoderHandle,
    ShardedDecoder,
    resolve_workers,
)

__all__ = [
    "DecoderHandle",
    "ExperimentHandle",
    "PipelineResult",
    "SharedPool",
    "ShardedDecoder",
    "ShardedExperiment",
    "circuit_fingerprint",
    "handle_fingerprint",
    "resolve_workers",
    "shard_layout",
    "shard_seed_tree",
]
