"""Multi-process shot sharding for the simulation/decoding hot path.

Shots of a memory experiment are statistically independent, so the shot
axis shards across worker processes — bit-identically to an in-process
run, for any worker count.  Two layers are available:

* :class:`ShardedExperiment` — the fused sample→decode pipeline: each
  worker samples its own shard (from a shard-indexed
  ``SeedSequence.spawn`` tree) and decodes it locally, so syndromes
  never cross a process boundary.  This is what
  :class:`~repro.core.memory.MemoryExperiment` runs on.
* :class:`ShardedDecoder` — decode-only sharding for callers that
  already hold a syndrome batch (e.g. syndromes replayed from disk or
  produced by an external sampler).

Both layers are **fault tolerant**: a dead worker (the executor breaks)
or a timed-out shard triggers a bounded pool respawn and the lost
shards re-run from their original seed-tree children, so results under
any fault schedule are bit-identical to the fault-free run; when the
pool cannot be rebuilt, execution degrades to in-process.
:mod:`repro.parallel.faults` provides the deterministic fault-injection
layer (:class:`FaultPlan`) the recovery machinery is tested against.

See :mod:`repro.parallel.pipeline` / :mod:`repro.parallel.sharded` for
the designs and `docs/performance.md` for the measured scaling.
"""

from repro.parallel.faults import FaultPlan, InjectedFault, activate
from repro.parallel.pipeline import (
    ExperimentHandle,
    PipelineResult,
    PoolUnavailable,
    SharedPool,
    ShardedExperiment,
    circuit_fingerprint,
    handle_fingerprint,
    shard_layout,
    shard_seed_tree,
)
from repro.parallel.sharded import (
    DecoderHandle,
    ShardedDecoder,
    resolve_workers,
)

__all__ = [
    "DecoderHandle",
    "ExperimentHandle",
    "FaultPlan",
    "InjectedFault",
    "PipelineResult",
    "PoolUnavailable",
    "SharedPool",
    "ShardedDecoder",
    "ShardedExperiment",
    "activate",
    "circuit_fingerprint",
    "handle_fingerprint",
    "resolve_workers",
    "shard_layout",
    "shard_seed_tree",
]
