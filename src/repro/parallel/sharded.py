"""Multi-process sharded decoding.

The bit-packed kernels saturate one core; >100k-shot sweep budgets need
the shot dimension sharded across cores as well.  Decoding is the ideal
layer to parallelise: shots are statistically independent and
:meth:`repro.decoders.bposd.BPOSDDecoder.decode_batch` already decodes
in independent blocks, so splitting a syndrome batch into shard-sized
slices and decoding each slice in a separate worker process is *exactly*
equivalent to decoding in-process — the merged corrections and
convergence flags are bit-identical for any worker count.

Design
------
* :class:`DecoderHandle` is a small picklable recipe (check matrix,
  priors, decoder knobs) from which any process can rebuild an
  equivalent :class:`~repro.decoders.bposd.BPOSDDecoder`.
* :class:`ShardedDecoder` owns a ``concurrent.futures``
  ``ProcessPoolExecutor``.  Workers receive the handle once (via the
  pool initializer) and build the decoder structure lazily on first use;
  subsequent tasks only ship per-point priors and the syndrome slice,
  so sweeps re-prior the cached worker decoders instead of re-pickling
  the check matrix per point.
* Shards are submitted in deterministic order and the results are
  concatenated by shard index, never by completion order, so the merged
  :class:`~repro.decoders.bposd.DecodeResult` does not depend on worker
  scheduling.  A worker exception propagates out of
  :meth:`ShardedDecoder.decode_batch` unchanged.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.decoders.bposd import BPOSDDecoder, DecodeResult

__all__ = ["DecoderHandle", "ShardedDecoder", "resolve_workers"]


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers=`` knob: ``None`` -> 1, ``0`` -> cpu_count.

    ``None`` (the default everywhere) means "in-process, single core";
    ``0`` asks for one worker per available core; any positive integer
    is taken literally.  Negative values are rejected.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = one per core) or None")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class DecoderHandle:
    """Picklable recipe for rebuilding a BP+OSD decoder in any process."""

    check_matrix: np.ndarray
    priors: np.ndarray
    max_iterations: int = 50
    osd_order: int = 0
    scaling_factor: float = 0.75
    backend: str = "packed"
    block_shots: int = 2048
    factor_cache_size: int = 32

    @classmethod
    def from_decoder(cls, decoder: BPOSDDecoder) -> "DecoderHandle":
        """Handle reproducing an existing decoder's configuration."""
        return cls(
            check_matrix=decoder.check_matrix,
            priors=decoder.priors,
            max_iterations=decoder.max_iterations,
            osd_order=decoder.osd_order,
            scaling_factor=decoder.scaling_factor,
            backend=decoder.backend,
            block_shots=decoder.block_shots,
            factor_cache_size=decoder.factor_cache_size,
        )

    def build(self) -> BPOSDDecoder:
        """Construct the decoder this handle describes."""
        return BPOSDDecoder(
            self.check_matrix, self.priors,
            max_iterations=self.max_iterations,
            osd_order=self.osd_order,
            scaling_factor=self.scaling_factor,
            backend=self.backend,
            block_shots=self.block_shots,
            factor_cache_size=self.factor_cache_size,
        )

    def with_priors(self, priors: np.ndarray) -> "DecoderHandle":
        """Same structure, new per-mechanism priors (sweep re-point)."""
        return replace(self, priors=np.asarray(priors, dtype=float))


# Per-process worker state: the handle arrives once via the pool
# initializer; the decoder it describes is built lazily on the first
# shard and re-priored (never rebuilt) on subsequent shards.
_WORKER_HANDLE: DecoderHandle | None = None
_WORKER_DECODER: BPOSDDecoder | None = None


def _init_worker(handle: DecoderHandle) -> None:
    global _WORKER_HANDLE, _WORKER_DECODER
    _WORKER_HANDLE = handle
    _WORKER_DECODER = None


def _decode_shard(priors: np.ndarray,
                  syndromes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decode one shard inside a worker process."""
    global _WORKER_DECODER
    if _WORKER_HANDLE is None:
        raise RuntimeError("worker pool was not initialised with a handle")
    if _WORKER_DECODER is None:
        _WORKER_DECODER = _WORKER_HANDLE.with_priors(priors).build()
    else:
        _WORKER_DECODER.update_priors(priors)
    result = _WORKER_DECODER.decode_batch(syndromes)
    return result.errors, result.bp_converged


@dataclass
class ShardedDecoder:
    """Shard syndrome batches across worker processes.

    Parameters
    ----------
    handle:
        The picklable decoder recipe shared with every worker.
    workers:
        Worker-process count (``None`` -> 1 = in-process, ``0`` -> one
        per core).  With one worker no pool is created at all.
    shard_shots:
        Shots per shard (default: the handle's ``block_shots``).  More
        shards than workers keeps the pool load-balanced when shards
        decode at different speeds (OSD-heavy shards are slower).
    max_rebuilds:
        How many times one :meth:`decode_batch` call respawns a broken
        pool (a worker died mid-decode) before falling back to the
        in-process decoder.  Decoding is deterministic per shard, so a
        retried batch is bit-identical either way.

    The executor is created lazily on the first multi-worker decode and
    reused across calls — a sweep pays the process-spawn cost once.
    Call :meth:`close` (or use the instance as a context manager) to
    release the pool.
    """

    handle: DecoderHandle
    workers: int | None = None
    shard_shots: int | None = None
    max_rebuilds: int = 2
    _executor: ProcessPoolExecutor | None = field(
        default=None, init=False, repr=False)
    _local: BPOSDDecoder | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.workers = resolve_workers(self.workers)
        if self.shard_shots is None:
            self.shard_shots = self.handle.block_shots
        if self.shard_shots < 1:
            raise ValueError("shard_shots must be positive")

    # ------------------------------------------------------------------
    def update_priors(self, priors: np.ndarray) -> None:
        """Refresh the priors for subsequent decodes (structure kept)."""
        self.handle = self.handle.with_priors(priors)
        if self._local is not None:
            self._local.update_priors(self.handle.priors)

    # ------------------------------------------------------------------
    def decode_batch(self, syndromes: np.ndarray) -> DecodeResult:
        """Decode a syndrome batch, sharded across the worker pool.

        Bit-identical to ``handle.build().decode_batch(syndromes)`` for
        every ``workers`` / ``shard_shots`` setting; a worker exception
        propagates to the caller.
        """
        syndromes = np.atleast_2d(np.asarray(syndromes)).astype(np.uint8)
        shots = syndromes.shape[0]
        if self.workers <= 1 or shots <= self.shard_shots:
            return self._decode_local(syndromes)
        # A dead worker breaks the whole pool mid-batch; decoding is a
        # pure function of (priors, syndromes), so the recovery is
        # simply: respawn the pool (bounded) and re-decode the batch,
        # falling back to the in-process decoder when the pool keeps
        # dying.  Either way the merged result is bit-identical.
        for _ in range(self.max_rebuilds + 1):
            try:
                return self._decode_pooled(syndromes, shots)
            except BrokenExecutor:
                if self._executor is not None:
                    self._executor.shutdown(wait=False, cancel_futures=True)
                    self._executor = None
        return self._decode_local(syndromes)

    def _decode_pooled(self, syndromes: np.ndarray,
                       shots: int) -> DecodeResult:
        executor = self._ensure_executor()
        futures = [
            executor.submit(_decode_shard, self.handle.priors,
                            syndromes[start:start + self.shard_shots])
            for start in range(0, shots, self.shard_shots)
        ]
        # Merge by submission (shard) order: completion order is
        # scheduler-dependent and must not leak into the result.
        errors_parts = []
        converged_parts = []
        for future in futures:
            errors, converged = future.result()
            errors_parts.append(errors)
            converged_parts.append(converged)
        return DecodeResult(errors=np.concatenate(errors_parts),
                            bp_converged=np.concatenate(converged_parts))

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Decode a single syndrome vector (always in-process)."""
        return self._decode_local(
            np.atleast_2d(np.asarray(syndrome)).astype(np.uint8)
        ).errors[0]

    # ------------------------------------------------------------------
    def _decode_local(self, syndromes: np.ndarray) -> DecodeResult:
        if self._local is None:
            self._local = self.handle.build()
        return self._local.decode_batch(syndromes)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.handle,),
            )
        return self._executor

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ShardedDecoder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
