"""Fused sample→decode pipeline, sharded and *streamed* across workers.

PR 2 sharded the *decode* stage: the parent sampled every shot, then
pickled syndrome slices out to a process pool.  At 100k–1M shot budgets
that leaves the Pauli-frame sampler and the syndrome transfer as the
serial wall-clock floor.  This module moves the whole per-shard pipeline
into the worker: each shard **samples its own shots and decodes them
locally**, so syndromes never cross a process boundary and the sampling
of one shard overlaps the decoding of another.

PR 4 turns the executor from submit-all/gather-all into a **streaming
engine**: shard results are consumed as they complete, folded into a
running ``(failures, shots)`` tally, and fed through a Wilson
confidence interval (:mod:`repro.core.stats`); once the interval's
half-width reaches a caller-supplied ``target_precision`` the run stops
— outstanding shards are cancelled and unsubmitted work is never
materialized.  Low-noise operating points that would have burned their
whole fixed budget now spend only the shots their confidence width
actually needs.

Determinism contract
--------------------
Results must be **bit-identical for any** ``workers=`` — parallelism is
a wall-clock knob, never a statistics knob.  The sampled stream is
therefore keyed on ``(seed, shard_shots, shard_index)``, not on which
process runs a shard:

* ``shard_layout(shots, shard_shots)`` splits the shot budget into
  deterministic shard sizes (all ``shard_shots`` except a ragged tail);
* ``shard_seed_tree(seed, num_shards)`` derives one independent child
  ``SeedSequence`` per shard via ``SeedSequence.spawn`` — child ``i``
  depends only on the root entropy and the shard index ``i``;
* shard ``i`` samples its shots from child ``i`` and decodes them with
  the shared decoder recipe; results are merged by shard index, never
  by completion order.

Early stopping preserves the contract because the stop decision is
evaluated on the shard-**index prefix order** only: the tally grows by
folding shard 0, then shard 1, … in submission order — a shard that
completes out of order waits in a buffer until every lower-indexed
shard has been folded — and the rule (:class:`~repro.core.stats.PrecisionTarget`,
a pure function of the folded tally) is checked after each fold.  The
stopping prefix, and therefore the contributing shard set, the LER,
the corrections and the convergence flags, is identical for every
worker count; workers only change how much already-submitted work
beyond the prefix gets thrown away.  ``workers=1`` runs the identical
per-shard code path in the parent and is the cross-checked reference
(`tests/test_fused_pipeline.py`, `tests/test_streaming.py`).

Design
------
* :class:`ExperimentHandle` is a picklable recipe for the whole
  pipeline: the decoder recipe (:class:`~repro.parallel.sharded.DecoderHandle`
  — check matrix, priors, BP/OSD knobs, backend), the observable
  matrix, and the sampling method (``"phenomenological"`` samples
  mechanism errors against the check matrix; ``"circuit"`` frame-
  simulates a circuit shipped per operating point).
* :class:`ShardedExperiment` owns the lazily created
  ``ProcessPoolExecutor``.  Workers receive the handle once via the
  pool initializer and build the decoder + packed matrices on their
  first shard; each shard task then ships only the per-point priors
  and the per-shard seed.  Submission is bounded (a small in-flight
  window per worker), so an early stop leaves the tail of the budget
  unmaterialized instead of queued.
* For the circuit method, each worker keeps a small **circuit cache**
  keyed on a content fingerprint (:func:`circuit_fingerprint`, the
  same structural-key idea as ``DemStructureCache``'s fault skeleton,
  plus the noise rates): the parent ships the operating point's
  circuit with only the first ``workers`` tasks; later tasks carry the
  key alone, and a worker that misses (it never saw a payload task for
  that point) raises a retry sentinel so the parent resubmits that one
  shard with the payload attached.  Per point, the circuit crosses the
  process boundary O(workers) times instead of O(shards) times
  (``ShardedExperiment.last_run_stats`` records the counts).
* The sweep caches stay in the parent: ``MemoryExperiment`` reuses its
  ``DemStructureCache`` / space-time structure across points and hands
  the pipeline the *same* check-matrix object each time, so the handle
  (and the workers' decoder structure) is built exactly once per sweep.
* A :class:`SharedPool` lets *several* experiments — a campaign's
  sweeps over different codes — stream through **one** process pool.
  Workers keep a small LRU of pipeline states keyed on a content
  fingerprint of the handle (:func:`handle_fingerprint`); the parent
  ships each experiment's handle with its first ``workers`` tasks and
  later tasks carry the key alone, with the same miss-retry fallback
  as the circuit cache.  Shard seeds, sizes and fold order are
  untouched, so pooled runs stay bit-identical to dedicated-pool and
  in-process runs.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from dataclasses import dataclass, field
from time import monotonic

import numpy as np

from repro.circuits.circuit import Circuit
from repro.core.phenomenological import sample_phenomenological_shard
from repro.core.stats import PrecisionTarget, as_precision_target, binomial_interval
from repro.linalg.bitops import pack_bits, packed_matmul
from repro.linalg.native import simulation_backend
from repro.parallel.faults import active_plan, apply_task_fault
from repro.parallel.sharded import DecoderHandle, resolve_workers
from repro.sim.frame import sample_circuit_shard

__all__ = [
    "ExperimentHandle",
    "PoolUnavailable",
    "SharedPool",
    "ShardedExperiment",
    "PipelineResult",
    "circuit_fingerprint",
    "handle_fingerprint",
    "shard_layout",
    "shard_seed_tree",
]


class PoolUnavailable(RuntimeError):
    """The worker pool died and could not be rebuilt within its retry
    budget.  The pipeline recovers by draining the remaining shards
    in-process (bit-identically — each shard is a pure function of its
    seed), so callers only see this if they ask the pool directly."""


def shard_layout(shots: int, shard_shots: int) -> list[int]:
    """Deterministic shard sizes for a shot budget.

    Every shard holds ``shard_shots`` shots except a possible ragged
    tail.  The layout depends only on ``(shots, shard_shots)`` — never
    on the worker count — which is what makes the per-shard seed tree
    (and therefore every sampled bit) worker-count independent.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if shard_shots < 1:
        raise ValueError("shard_shots must be positive")
    sizes = [shard_shots] * (shots // shard_shots)
    if shots % shard_shots:
        sizes.append(shots % shard_shots)
    return sizes


def shard_seed_tree(seed, num_shards: int) -> list[np.random.SeedSequence]:
    """One independent child ``SeedSequence`` per shard.

    ``seed`` may be an int or a ``SeedSequence``; either way the tree is
    rebuilt from the root's ``(entropy, spawn_key)`` value, so the
    children depend only on the seed *value* and the shard index — not
    on how many times the caller's sequence object has spawned before,
    and not on which worker later consumes a child.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = np.random.SeedSequence(entropy=seed.entropy,
                                      spawn_key=seed.spawn_key)
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(num_shards) if num_shards else []


def circuit_fingerprint(circuit: Circuit) -> str:
    """Content key for the worker-side circuit cache.

    Digests every instruction (name, targets, noise arguments) plus the
    detector/observable counts — the same information as the DEM fault
    skeleton *and* the per-point noise rates, so two operating points
    of one sweep get distinct keys while re-runs of the same circuit
    hit the cache.  A stable digest (not ``hash()``) so parent and
    workers agree across processes.
    """
    hasher = hashlib.sha1()
    hasher.update(
        f"{circuit.num_detectors}|{circuit.num_observables}".encode()
    )
    for ins in circuit.instructions:
        hasher.update(
            repr((ins.name, ins.targets, ins.argument, ins.arguments)).encode()
        )
    return hasher.hexdigest()


def handle_fingerprint(handle: "ExperimentHandle") -> str:
    """Content key for the shared-pool worker-side state cache.

    Digests the pipeline *structure* — check/observable matrices,
    decoder knobs, backend and sampling method — but not the priors,
    which every shard task re-ships anyway (sweep points share one
    structure and differ only in priors).  Stable across processes
    (sha1 of the bytes, not ``hash()``), so parent and workers agree
    on which cached state a task addresses.
    """
    decoder = handle.decoder
    hasher = hashlib.sha1()
    hasher.update(repr((
        handle.method, decoder.backend, decoder.max_iterations,
        decoder.osd_order, decoder.scaling_factor, decoder.block_shots,
        decoder.factor_cache_size, decoder.check_matrix.shape,
        handle.observable_matrix.shape,
    )).encode())
    hasher.update(np.ascontiguousarray(decoder.check_matrix).tobytes())
    hasher.update(np.ascontiguousarray(handle.observable_matrix).tobytes())
    return hasher.hexdigest()


@dataclass
class PipelineResult:
    """Merged outcome of a (possibly early-stopped) sample→decode run.

    ``shots``/``failures``/``bp_converged``/``errors`` cover exactly
    the **contributing prefix** of shards — the folded shards 0..k of
    the stopping decision, identical for every worker count.
    ``shots_requested`` is the full budget the caller asked for;
    ``stopped_early`` says whether part of it was left unspent.

    A ``prior_tally`` carried into the run is echoed back as
    ``prior_failures``/``prior_shots``; the stop rule — and the
    reported ``ci_low``/``ci_high`` at ``confidence`` — are evaluated
    on the **combined** tally (``tally_failures``/``tally_shots``), so
    the interval always matches :attr:`tally_error_rate` (not
    :attr:`logical_error_rate`, which is this run's contribution
    alone).  ``target_met`` is ``None`` when no ``target_precision``
    was given.
    """

    shots: int
    failures: int
    bp_converged: np.ndarray
    num_shards: int
    errors: np.ndarray | None = None
    shots_requested: int | None = None
    stopped_early: bool = False
    target_met: bool | None = None
    ci_low: float = 0.0
    ci_high: float = 1.0
    confidence: float = 0.95
    prior_failures: int = 0
    prior_shots: int = 0

    def __post_init__(self) -> None:
        if self.shots_requested is None:
            self.shots_requested = self.shots

    @property
    def shots_used(self) -> int:
        """Alias for ``shots``: the shots that actually contribute."""
        return self.shots

    @property
    def tally_failures(self) -> int:
        """Failures of the stop-rule tally: prior + this run."""
        return self.prior_failures + self.failures

    @property
    def tally_shots(self) -> int:
        """Shots of the stop-rule tally: prior + this run."""
        return self.prior_shots + self.shots

    @property
    def tally_error_rate(self) -> float:
        """The estimate ``ci_low``/``ci_high`` actually bound."""
        if self.tally_shots == 0:
            return 0.0
        return self.tally_failures / self.tally_shots

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0

    @property
    def bp_converged_fraction(self) -> float:
        if self.bp_converged.size == 0:
            return 1.0
        return float(self.bp_converged.mean())


@dataclass(frozen=True)
class ExperimentHandle:
    """Picklable recipe for the fused sample→decode pipeline.

    ``decoder`` carries the check matrix, priors and decoder knobs (and
    the backend, which the sampling stage shares); ``observable_matrix``
    maps corrections and true errors to logical observables; ``method``
    selects the sampler: ``"phenomenological"`` draws mechanism errors
    against the check matrix, ``"circuit"`` frame-simulates the circuit
    shipped with each run.
    """

    decoder: DecoderHandle
    observable_matrix: np.ndarray
    method: str = "phenomenological"

    def __post_init__(self) -> None:
        if self.method not in ("phenomenological", "circuit"):
            raise ValueError("method must be 'phenomenological' or 'circuit'")

    @property
    def backend(self) -> str:
        return self.decoder.backend

    def build_state(self) -> "_PipelineState":
        """Construct the per-process sampling + decoding state."""
        return _PipelineState(self)


class _PipelineState:
    """Per-process state: the decoder plus packed projection matrices.

    Built once per process (lazily, on the first shard) and re-priored
    — never rebuilt — on subsequent shards and sweep points, exactly
    like PR 2's worker-side decoder cache.
    """

    def __init__(self, handle: ExperimentHandle) -> None:
        self.handle = handle
        self.decoder = handle.decoder.build()
        # ``"native"`` shares the packed sampling/projection path: the
        # native tier accelerates decoder kernels only, so both fast
        # backends sample identical bits (see linalg.native).
        self.sim_backend = simulation_backend(handle.backend)
        if self.sim_backend == "packed":
            self.packed_check = pack_bits(self.decoder.check_matrix, axis=1)
            self.packed_observable = pack_bits(handle.observable_matrix,
                                               axis=1)
        else:
            self.packed_check = None
            self.packed_observable = None

    # ------------------------------------------------------------------
    def predict_observables(self, errors: np.ndarray) -> np.ndarray:
        """``errors @ observable_matrix.T mod 2`` in the active backend."""
        if self.sim_backend == "packed":
            return packed_matmul(pack_bits(errors, axis=1),
                                 self.packed_observable)
        return (errors @ self.handle.observable_matrix.T) % 2

    def run_shard(self, priors: np.ndarray, circuit: Circuit | None,
                  seed: np.random.SeedSequence, shots: int,
                  collect_errors: bool
                  ) -> tuple[int, np.ndarray, np.ndarray | None]:
        """Sample and decode one shard; returns (failures, flags, errors).

        The single code path shared by the in-process reference and the
        pool workers — bit-identity across worker counts follows from
        everything here being a pure function of the arguments.
        """
        self.decoder.update_priors(priors)
        if self.handle.method == "phenomenological":
            syndromes, observables = sample_phenomenological_shard(
                self.decoder.check_matrix, self.handle.observable_matrix,
                priors, shots, seed, backend=self.sim_backend,
                packed_matrices=(self.packed_check, self.packed_observable)
                if self.sim_backend == "packed" else None,
            )
        else:
            if circuit is None:
                raise ValueError("the circuit method needs a circuit per run")
            sample = sample_circuit_shard(circuit, shots, seed,
                                          backend=self.sim_backend)
            syndromes, observables = sample.detectors, sample.observables
        decoded = self.decoder.decode_batch(syndromes)
        predicted = self.predict_observables(decoded.errors)
        failures = int(
            np.any(predicted.astype(bool) != observables.astype(bool),
                   axis=1).sum()
        )
        return (failures, decoded.bp_converged,
                decoded.errors if collect_errors else None)


class _CircuitCacheMiss(RuntimeError):
    """Raised by a worker whose circuit cache lacks the task's key.

    The parent resubmits the shard with the circuit payload attached;
    the retried shard runs the identical ``(priors, seed, shots)`` so
    the result is unchanged.  ``args[0]`` carries the missing key
    (plain-args exceptions pickle cleanly across the pool boundary).
    """


class _HandleCacheMiss(RuntimeError):
    """Raised by a shared-pool worker whose state cache lacks the task's
    handle key.  Same protocol as :class:`_CircuitCacheMiss`: the parent
    resubmits the identical shard with the handle payload attached."""


#: How many circuits a worker retains (sweeps revisit at most a couple
#: of operating points at a time; each circuit is a few KB).
_WORKER_CIRCUIT_CAPACITY = 4

# Per-process worker state: the handle arrives once via the pool
# initializer; the pipeline state it describes is built lazily on the
# first shard and re-priored (never rebuilt) on subsequent shards.  The
# circuit cache maps fingerprint keys to circuits shipped by payload
# tasks (circuit method only).
_WORKER_HANDLE: ExperimentHandle | None = None
_WORKER_STATE: _PipelineState | None = None
_WORKER_CIRCUITS: "OrderedDict[str, Circuit]" = OrderedDict()


def _init_pipeline_worker(handle: ExperimentHandle) -> None:
    global _WORKER_HANDLE, _WORKER_STATE
    _WORKER_HANDLE = handle
    _WORKER_STATE = None
    _WORKER_CIRCUITS.clear()


def _resolve_worker_circuit(circuit: Circuit | None,
                            circuit_key: str | None) -> Circuit | None:
    """Cache-or-resolve a task's circuit inside the worker.

    A payload task stores the circuit under its key (LRU-bounded); a
    key-only task resolves it from the cache or raises
    :class:`_CircuitCacheMiss` for the parent to retry with payload.
    """
    if circuit_key is None:
        return circuit
    if circuit is not None:
        _WORKER_CIRCUITS[circuit_key] = circuit
        _WORKER_CIRCUITS.move_to_end(circuit_key)
        while len(_WORKER_CIRCUITS) > _WORKER_CIRCUIT_CAPACITY:
            _WORKER_CIRCUITS.popitem(last=False)
        return circuit
    circuit = _WORKER_CIRCUITS.get(circuit_key)
    if circuit is None:
        raise _CircuitCacheMiss(circuit_key)
    _WORKER_CIRCUITS.move_to_end(circuit_key)
    return circuit


def _run_pipeline_shard(priors: np.ndarray, circuit: Circuit | None,
                        circuit_key: str | None,
                        seed: np.random.SeedSequence, shots: int,
                        collect_errors: bool, fault: tuple | None = None
                        ) -> tuple[int, np.ndarray, np.ndarray | None]:
    """Sample and decode one shard inside a worker process.

    ``circuit`` is the optional payload populating this worker's cache
    under ``circuit_key``; a keyed task without payload resolves the
    circuit from the cache or raises :class:`_CircuitCacheMiss` for the
    parent to retry with the payload attached.  ``fault`` is an
    injected fault shipped by the parent (worker kill / delay — see
    :mod:`repro.parallel.faults`); ``None`` on every clean run.
    """
    global _WORKER_STATE
    apply_task_fault(fault)
    if _WORKER_HANDLE is None:
        raise RuntimeError("worker pool was not initialised with a handle")
    if _WORKER_STATE is None:
        _WORKER_STATE = _WORKER_HANDLE.build_state()
    circuit = _resolve_worker_circuit(circuit, circuit_key)
    return _WORKER_STATE.run_shard(priors, circuit, seed, shots,
                                   collect_errors)


#: How many pipeline states a shared-pool worker retains.  A campaign
#: typically cycles through a handful of codes; states for evicted
#: handles are rebuilt on demand (cost: one decoder construction).
_SHARED_STATE_CAPACITY = 8

#: Shared-pool worker cache: handle fingerprint -> built pipeline state.
_SHARED_STATES: "OrderedDict[str, _PipelineState]" = OrderedDict()


def _init_shared_worker() -> None:
    _SHARED_STATES.clear()
    _WORKER_CIRCUITS.clear()


def _run_shared_shard(handle: ExperimentHandle | None, handle_key: str,
                      priors: np.ndarray, circuit: Circuit | None,
                      circuit_key: str | None,
                      seed: np.random.SeedSequence, shots: int,
                      collect_errors: bool, fault: tuple | None = None
                      ) -> tuple[int, np.ndarray, np.ndarray | None]:
    """Shared-pool variant of :func:`_run_pipeline_shard`.

    The pipeline state is addressed by ``handle_key``; ``handle`` is
    the optional payload that populates the cache (shipped with each
    experiment's first ``workers`` tasks).  A key-only task that misses
    raises :class:`_HandleCacheMiss` for the parent to retry with the
    payload attached — the retried shard runs the identical
    ``(priors, seed, shots)``, so the result is unchanged.  ``fault``
    is a parent-shipped injected fault (``None`` on clean runs).
    """
    apply_task_fault(fault)
    state = _SHARED_STATES.get(handle_key)
    if state is None:
        if handle is None:
            raise _HandleCacheMiss(handle_key)
        state = handle.build_state()
        _SHARED_STATES[handle_key] = state
        while len(_SHARED_STATES) > _SHARED_STATE_CAPACITY:
            _SHARED_STATES.popitem(last=False)
    _SHARED_STATES.move_to_end(handle_key)
    circuit = _resolve_worker_circuit(circuit, circuit_key)
    return state.run_shard(priors, circuit, seed, shots, collect_errors)


class SharedPool:
    """One process pool serving many :class:`ShardedExperiment` instances.

    A campaign runs sweeps over different codes — different check
    matrices, hence different pipeline handles.  A dedicated pool per
    experiment would respawn processes (and rebuild worker state) per
    sweep; a ``SharedPool`` keeps one executor alive across all of
    them, with per-handle worker state resolved through
    :func:`_run_shared_shard`'s fingerprint-keyed cache.

    Pass it as ``ShardedExperiment(pool=...)`` (or
    ``MemoryExperiment(pool=...)``); the experiments then treat the
    pool as externally owned — their ``close()`` leaves it running.
    Use as a context manager, or call :meth:`close`, to shut it down.

    The pool is **self-healing**: when a worker dies (``os._exit``,
    OOM kill, segfault) the executor breaks, and :meth:`rebuild`
    respawns it — up to ``max_rebuilds`` times over the pool's
    lifetime, after which the pool is marked :attr:`failed` and every
    experiment bound to it degrades to in-process execution (results
    stay bit-identical; only the wall clock suffers).
    """

    def __init__(self, workers: int | None = None,
                 max_rebuilds: int = 2) -> None:
        self.workers = resolve_workers(workers)
        self.max_rebuilds = int(max_rebuilds)
        self.rebuilds = 0
        self._executor = None
        self._failed = False
        self._closed = False

    @property
    def executor(self):
        """The lazily created ``ProcessPoolExecutor``."""
        if self._closed:
            raise RuntimeError("shared pool is closed")
        if self._failed:
            raise PoolUnavailable(
                f"shared pool gave up after {self.rebuilds} rebuilds")
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_shared_worker,
            )
        return self._executor

    @property
    def failed(self) -> bool:
        """True once the rebuild budget is exhausted — callers should
        run in-process instead of submitting to this pool."""
        return self._failed

    def rebuild(self):
        """Tear down a broken executor and respawn it (bounded).

        Raises :class:`PoolUnavailable` — and marks the pool
        :attr:`failed` — once ``max_rebuilds`` respawns have been
        spent.  The freshly spawned workers start with empty state
        caches, so callers must re-ship their payloads.
        """
        if self._executor is not None:
            # The pool is broken: don't wait on it, just drop it.
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self.rebuilds >= self.max_rebuilds:
            self._failed = True
            raise PoolUnavailable(
                f"shared pool gave up after {self.rebuilds} rebuilds")
        self.rebuilds += 1
        return self.executor

    def close(self) -> None:
        """Shut down the pool (idempotent; the pool is unusable after)."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SharedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


@dataclass
class ShardedExperiment:
    """Stream a full sample→decode experiment across worker processes.

    Parameters
    ----------
    handle:
        The picklable pipeline recipe shared with every worker.
    workers:
        Worker-process count (``None`` -> 1 = in-process, ``0`` -> one
        per core).  Any value produces bit-identical results at fixed
        ``shard_shots``; with one worker no pool is created at all.
    shard_shots:
        Shots per shard (default: the decoder's ``block_shots``).  Part
        of the determinism key — changing it changes which seed-tree
        child samples which shot, so compare runs at a fixed value.  It
        is also the early-stop granularity: the stop rule is evaluated
        once per folded shard.
    pool:
        Optional :class:`SharedPool` to stream through instead of a
        dedicated executor — the worker count then comes from the pool,
        and :meth:`close` leaves the pool running (it is owned by the
        caller, typically a campaign spanning several experiments).
        Results are bit-identical with or without a shared pool.
    shard_timeout:
        Optional per-shard wall-clock limit (seconds).  A shard still
        pending past its deadline is treated exactly like a pool
        failure: the executor is rebuilt and the lost shards re-run
        with the same seed-tree children.  ``None`` (default) never
        times out — set it well above the slowest honest shard.
    max_shard_retries:
        How many pool failures (worker death / timeout) one :meth:`run`
        tolerates before degrading to in-process execution (default 3).

    Fault tolerance: a dead worker breaks the whole
    ``ProcessPoolExecutor``; the run detects it (``BrokenExecutor`` or
    a ``shard_timeout`` expiry), respawns the executor (its own, or
    ``pool.rebuild()``), and re-submits every lost shard with its
    payload re-attached.  The retried shards run the identical
    ``(priors, seed, shots)``, and folds stay in shard-index order, so
    **results under any fault schedule are bit-identical to the
    fault-free run**.  When the pool cannot be rebuilt the remaining
    shards drain in-process (``last_run_stats["local_fallback"]``).

    The executor is created lazily on the first multi-shard run and
    reused across calls (a sweep pays the process-spawn cost once);
    :meth:`close` — or using the instance as a context manager —
    releases it.  ``last_run_stats`` records, for the most recent
    :meth:`run`, the submission/fold counters the instrumentation tests
    assert on.
    """

    handle: ExperimentHandle
    workers: int | None = None
    shard_shots: int | None = None
    pool: SharedPool | None = None
    shard_timeout: float | None = None
    max_shard_retries: int | None = None
    last_run_stats: dict = field(default_factory=dict, init=False,
                                 repr=False, compare=False)
    _executor: object | None = field(default=None, init=False, repr=False)
    _local: _PipelineState | None = field(default=None, init=False,
                                          repr=False)
    _circuit_key_memo: tuple | None = field(default=None, init=False,
                                            repr=False)
    _handle_key: str | None = field(default=None, init=False, repr=False)
    _pool_gone: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.pool is not None:
            self.workers = self.pool.workers
        else:
            self.workers = resolve_workers(self.workers)
        if self.shard_shots is None:
            self.shard_shots = self.handle.decoder.block_shots
        if self.shard_shots < 1:
            raise ValueError("shard_shots must be positive")
        if self.max_shard_retries is None:
            self.max_shard_retries = 3
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if self.max_shard_retries < 0:
            raise ValueError("max_shard_retries must be non-negative")

    # ------------------------------------------------------------------
    @property
    def local_state(self) -> _PipelineState:
        """The in-process pipeline state (built on first use)."""
        if self._local is None:
            self._local = self.handle.build_state()
        return self._local

    # ------------------------------------------------------------------
    def _circuit_key(self, circuit: Circuit) -> str:
        """Fingerprint of ``circuit``, memoized by object identity (the
        sweep hands the same circuit object to every shard of a point)."""
        if (self._circuit_key_memo is not None
                and self._circuit_key_memo[0] is circuit):
            return self._circuit_key_memo[1]
        key = circuit_fingerprint(circuit)
        self._circuit_key_memo = (circuit, key)
        return key

    # ------------------------------------------------------------------
    def run(self, shots: int, seed, priors: np.ndarray | None = None,
            circuit: Circuit | None = None,
            collect_errors: bool = False,
            target_precision: "float | PrecisionTarget | None" = None,
            confidence: float = 0.95,
            prior_tally: tuple[int, int] = (0, 0)) -> PipelineResult:
        """Sample and decode up to ``shots`` shots, streamed across the pool.

        ``seed`` roots the shard seed tree (int or ``SeedSequence``;
        see :func:`shard_seed_tree`).  ``priors`` refresh the decoder
        (and, for the phenomenological method, the sampler) at this
        operating point without rebuilding any structure; ``circuit``
        must carry the operating point's noisy circuit for the
        ``"circuit"`` method.  ``collect_errors=True`` additionally
        merges the per-shot corrections into the result (shipping them
        back from the workers — test/debug use, not the hot path).

        ``target_precision`` (a half-width float, or a
        :class:`~repro.core.stats.PrecisionTarget` for relative /
        non-default-confidence targets) enables early stopping: the run
        folds shard results in index order and stops at the first
        prefix whose Wilson interval is tight enough.  ``prior_tally``
        seeds the stop rule (and the reported interval) with
        ``(failures, shots)`` from earlier runs of the same operating
        point — the adaptive sweep's pilot pass uses this so a refine
        run stops as soon as the *combined* tally meets the target.
        """
        if priors is None:
            priors = self.handle.decoder.priors
        priors = np.asarray(priors, dtype=float)
        target = as_precision_target(target_precision, confidence=confidence)
        report_confidence = target.confidence if target is not None else confidence
        prior_failures, prior_shots = (int(prior_tally[0]),
                                       int(prior_tally[1]))
        if prior_failures < 0 or prior_shots < prior_failures:
            raise ValueError("prior_tally must be (failures, shots) with "
                             "0 <= failures <= shots")
        sizes = shard_layout(shots, self.shard_shots)
        seeds = shard_seed_tree(seed, len(sizes))

        stats = {
            "num_shards": len(sizes),
            "shards_run": 0,
            "shards_folded": 0,
            "tasks_submitted": 0,
            "circuit_payload_tasks": 0,
            "circuit_cache_misses": 0,
            "handle_payload_tasks": 0,
            "handle_cache_misses": 0,
            "pool_failures": 0,
            "shard_timeouts": 0,
            "shards_resubmitted": 0,
            "local_fallback": False,
        }
        tally_failures = prior_failures
        tally_shots = prior_shots
        met = target.met(tally_failures, tally_shots) if target else False
        outcomes: list[tuple] = []

        # A pool that already exhausted its rebuild budget (this run's
        # or a previous one's) is not worth submitting to: run the
        # identical per-shard code in-process instead.
        pool_dead = (self._pool_gone
                     or (self.pool is not None and self.pool.failed))
        if pool_dead:
            stats["local_fallback"] = True
        if not met:
            if self.workers <= 1 or len(sizes) <= 1 or pool_dead:
                outcomes, met = self._run_local(sizes, seeds, priors, circuit,
                                                collect_errors, target,
                                                tally_failures, tally_shots,
                                                stats)
            else:
                outcomes, met = self._run_streamed(sizes, seeds, priors,
                                                   circuit, collect_errors,
                                                   target, tally_failures,
                                                   tally_shots, stats)
        stats["shards_folded"] = len(outcomes)
        self.last_run_stats = stats

        failures = sum(outcome[0] for outcome in outcomes)
        used_shots = sum(sizes[: len(outcomes)])
        if outcomes:
            bp_converged = np.concatenate([o[1] for o in outcomes])
        else:
            bp_converged = np.zeros(0, dtype=bool)
        errors = None
        if collect_errors:
            if outcomes:
                errors = np.concatenate([o[2] for o in outcomes])
            else:
                errors = np.zeros(
                    (0, self.handle.decoder.check_matrix.shape[1]),
                    dtype=np.uint8,
                )
        ci_low, ci_high = binomial_interval(
            prior_failures + failures, prior_shots + used_shots,
            report_confidence,
        )
        return PipelineResult(
            shots=used_shots, failures=failures, bp_converged=bp_converged,
            num_shards=len(outcomes), errors=errors, shots_requested=shots,
            stopped_early=bool(met and len(outcomes) < len(sizes)),
            target_met=(None if target is None else bool(met)),
            ci_low=ci_low, ci_high=ci_high, confidence=report_confidence,
            prior_failures=prior_failures, prior_shots=prior_shots,
        )

    # ------------------------------------------------------------------
    def _run_local(self, sizes, seeds, priors, circuit, collect_errors,
                   target, tally_failures, tally_shots, stats):
        """In-process reference: fold shards in index order, stop at the
        first prefix meeting the target.  The exact decision sequence
        the streamed path reproduces."""
        outcomes = []
        met = False
        for size, shard_seed in zip(sizes, seeds):
            outcome = self.local_state.run_shard(priors, circuit, shard_seed,
                                                 size, collect_errors)
            stats["shards_run"] += 1
            outcomes.append(outcome)
            tally_failures += outcome[0]
            tally_shots += size
            if target is not None and target.met(tally_failures, tally_shots):
                met = True
                break
        return outcomes, met

    def _run_streamed(self, sizes, seeds, priors, circuit, collect_errors,
                      target, tally_failures, tally_shots, stats):
        """Streamed execution: bounded in-flight submission, completion
        buffered out of order, folds strictly in shard-index order.

        The stop rule only ever sees prefix tallies, so the stopping
        shard — and everything derived from it — matches `_run_local`
        bit for bit; completion order decides nothing but how much
        beyond-prefix work gets discarded.

        Fault tolerance: ``BrokenExecutor`` (a worker died) and shard
        timeouts both funnel into :func:`recover` — drop every pending
        future, respawn the executor and re-submit the lost shards with
        payloads re-attached.  The retried shards run the identical
        ``(priors, seed, shots)``, so no fault schedule can change the
        folded prefix.  When the retry budget is spent, the remaining
        shards drain in-process (still in index order, still
        bit-identical).
        """
        needs_circuit = self.handle.method == "circuit"
        circuit_key = None
        if needs_circuit:
            if circuit is None:
                raise ValueError("the circuit method needs a circuit per run")
            circuit_key = self._circuit_key(circuit)
        shared = self.pool is not None
        if shared and self._handle_key is None:
            self._handle_key = handle_fingerprint(self.handle)
        executor = self._ensure_executor()
        plan = active_plan()
        # Enough in-flight work to keep every worker busy while the
        # prefix folds, small enough that an early stop wastes at most
        # ~two shards per worker.
        max_inflight = max(2 * self.workers, 2)
        # The first `workers` tasks carry the heavyweight payloads (the
        # handle on a shared pool, the circuit for the circuit method);
        # later tasks address the worker caches by key alone.
        payload_quota = self.workers if (needs_circuit or shared) else 0

        pending: dict = {}
        deadlines: dict = {}
        ready: dict[int, tuple] = {}
        retries: dict[int, int] = {}
        outcomes: list[tuple] = []
        next_submit = 0
        met = False

        def submit(index: int, with_payload: bool) -> None:
            payload = circuit if (needs_circuit and with_payload) else None
            if payload is not None:
                stats["circuit_payload_tasks"] += 1
            stats["tasks_submitted"] += 1
            fault = plan.next_task_fault() if plan is not None else None
            if shared:
                handle = self.handle if with_payload else None
                if handle is not None:
                    stats["handle_payload_tasks"] += 1
                future = executor.submit(
                    _run_shared_shard, handle, self._handle_key, priors,
                    payload, circuit_key, seeds[index], sizes[index],
                    collect_errors, fault,
                )
            else:
                future = executor.submit(
                    _run_pipeline_shard, priors, payload, circuit_key,
                    seeds[index], sizes[index], collect_errors, fault,
                )
            pending[future] = index
            if self.shard_timeout is not None:
                deadlines[future] = monotonic() + self.shard_timeout

        def recover(extra_lost=()) -> None:
            """Pool failure: respawn the executor, re-submit lost shards.

            Every shard not yet in ``ready``/``outcomes`` — pending
            futures plus any index the caller already popped — re-runs
            with its original seed-tree child, and the fresh workers'
            empty caches get the payloads re-shipped, so recovery is
            invisible to the folded result.
            """
            nonlocal executor, payload_quota
            stats["pool_failures"] += 1
            if stats["pool_failures"] > self.max_shard_retries:
                raise PoolUnavailable(
                    f"worker pool failed {stats['pool_failures']} times "
                    f"(max_shard_retries={self.max_shard_retries})")
            lost = sorted(set(pending.values()) | set(extra_lost))
            for future in pending:
                future.cancel()
            pending.clear()
            deadlines.clear()
            executor = self._rebuild_executor()
            payload_quota = (self.workers if (needs_circuit or shared)
                             else 0)
            stats["shards_resubmitted"] += len(lost)
            for index in lost:
                submit(index, with_payload=payload_quota > 0)
                payload_quota = max(0, payload_quota - 1)

        try:
            while True:
                try:
                    while (next_submit < len(sizes)
                           and len(pending) < max_inflight):
                        submit(next_submit, with_payload=payload_quota > 0)
                        payload_quota = max(0, payload_quota - 1)
                        next_submit += 1
                except BrokenExecutor:
                    recover()
                while len(outcomes) in ready:
                    outcome = ready.pop(len(outcomes))
                    outcomes.append(outcome)
                    tally_failures += outcome[0]
                    tally_shots += sizes[len(outcomes) - 1]
                    if target is not None and target.met(tally_failures,
                                                         tally_shots):
                        met = True
                        break
                if met or len(outcomes) == len(sizes):
                    break
                if not pending:
                    # A recovery emptied the in-flight window; loop back
                    # to the top-up before waiting on anything.
                    continue
                if self.shard_timeout is not None:
                    wait_budget = min(deadlines.values()) - monotonic()
                    if wait_budget <= 0:
                        stats["shard_timeouts"] += 1
                        recover()
                        continue
                    done, _ = wait(list(pending), timeout=wait_budget,
                                   return_when=FIRST_COMPLETED)
                    if not done:
                        # Nothing completed within the tightest
                        # deadline: the overdue shard is stuck.
                        stats["shard_timeouts"] += 1
                        recover()
                        continue
                else:
                    done, _ = wait(list(pending),
                                   return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    deadlines.pop(future, None)
                    try:
                        ready[index] = future.result()
                        stats["shards_run"] += 1
                    except (_CircuitCacheMiss, _HandleCacheMiss) as miss:
                        # A retry re-ships every payload, so one retry
                        # always suffices for the worker that ran it.
                        if isinstance(miss, _HandleCacheMiss):
                            stats["handle_cache_misses"] += 1
                        else:
                            stats["circuit_cache_misses"] += 1
                        if retries.get(index, 0) >= 2:
                            raise
                        retries[index] = retries.get(index, 0) + 1
                        submit(index, with_payload=True)
                    except BrokenExecutor:
                        # A worker died; the popped shard is lost along
                        # with everything still pending.
                        recover(extra_lost=(index,))
                        break
        except PoolUnavailable:
            # Retry budget spent: drain the remaining shards in-process,
            # keeping everything already folded or buffered.  Each shard
            # is a pure function of (priors, seed, shots), so the result
            # is still bit-identical to a clean run.
            stats["local_fallback"] = True
            self._pool_gone = self.pool is None
            while not met and len(outcomes) < len(sizes):
                index = len(outcomes)
                outcome = ready.pop(index, None)
                if outcome is None:
                    outcome = self.local_state.run_shard(
                        priors, circuit, seeds[index], sizes[index],
                        collect_errors)
                    stats["shards_run"] += 1
                outcomes.append(outcome)
                tally_failures += outcome[0]
                tally_shots += sizes[index]
                if target is not None and target.met(tally_failures,
                                                     tally_shots):
                    met = True
        finally:
            # Early stop or error: whatever is still queued is wasted
            # work — cancel it (running shards finish and are ignored).
            for future in pending:
                future.cancel()
        return outcomes, met

    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self.pool is not None:
            return self.pool.executor
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_pipeline_worker,
                initargs=(self.handle,),
            )
        return self._executor

    def _rebuild_executor(self):
        """Respawn a broken executor (dedicated: drop + recreate; shared:
        the pool's bounded :meth:`SharedPool.rebuild`)."""
        if self.pool is not None:
            return self.pool.rebuild()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        return self._ensure_executor()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the dedicated worker pool, if any (idempotent).

        A :class:`SharedPool` passed in at construction is owned by the
        caller and is deliberately left running.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ShardedExperiment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
