"""Fused sample→decode pipeline, sharded across worker processes.

PR 2 sharded the *decode* stage: the parent sampled every shot, then
pickled syndrome slices out to a process pool.  At 100k–1M shot budgets
that leaves the Pauli-frame sampler and the syndrome transfer as the
serial wall-clock floor.  This module moves the whole per-shard pipeline
into the worker: each shard **samples its own shots and decodes them
locally**, so syndromes never cross a process boundary and the sampling
of one shard overlaps the decoding of another.

Determinism contract
--------------------
Results must be **bit-identical for any** ``workers=`` — parallelism is
a wall-clock knob, never a statistics knob.  The sampled stream is
therefore keyed on ``(seed, shard_shots, shard_index)``, not on which
process runs a shard:

* ``shard_layout(shots, shard_shots)`` splits the shot budget into
  deterministic shard sizes (all ``shard_shots`` except a ragged tail);
* ``shard_seed_tree(seed, num_shards)`` derives one independent child
  ``SeedSequence`` per shard via ``SeedSequence.spawn`` — child ``i``
  depends only on the root entropy and the shard index ``i``;
* shard ``i`` samples its shots from child ``i`` and decodes them with
  the shared decoder recipe; results are merged by shard index, never
  by completion order.

Because every shard's bits are a pure function of ``(seed, shard_shots,
shard_index)``, running the shards in-process (``workers=1``), across 2
workers, or across 4 produces the same samples, the same corrections,
the same convergence flags and the same failure count.  ``workers=1``
runs the identical per-shard code path in the parent and is the
cross-checked reference (`tests/test_fused_pipeline.py`).

Design
------
* :class:`ExperimentHandle` is a picklable recipe for the whole
  pipeline: the decoder recipe (:class:`~repro.parallel.sharded.DecoderHandle`
  — check matrix, priors, BP/OSD knobs, backend), the observable
  matrix, and the sampling method (``"phenomenological"`` samples
  mechanism errors against the check matrix; ``"circuit"`` frame-
  simulates a circuit shipped per operating point).
* :class:`ShardedExperiment` owns the lazily created
  ``ProcessPoolExecutor``.  Workers receive the handle once via the
  pool initializer and build the decoder + packed matrices on their
  first shard; each shard task then ships only the per-point priors,
  the per-shard seed and — for the circuit method — the operating
  point's circuit.  The circuit rides along with *every* shard task
  (``ProcessPoolExecutor`` has no per-point broadcast), which is a few
  KB of pickle per task against a multi-second decode; a worker-side
  circuit cache is a noted follow-up for >10^6-shot circuit-level
  budgets (see ROADMAP.md).
* The sweep caches stay in the parent: ``MemoryExperiment`` reuses its
  ``DemStructureCache`` / space-time structure across points and hands
  the pipeline the *same* check-matrix object each time, so the handle
  (and the workers' decoder structure) is built exactly once per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Circuit
from repro.core.phenomenological import sample_phenomenological_shard
from repro.decoders.bposd import BPOSDDecoder
from repro.linalg.bitops import pack_bits, packed_matmul
from repro.parallel.sharded import DecoderHandle, resolve_workers
from repro.sim.frame import sample_circuit_shard

__all__ = [
    "ExperimentHandle",
    "ShardedExperiment",
    "PipelineResult",
    "shard_layout",
    "shard_seed_tree",
]


def shard_layout(shots: int, shard_shots: int) -> list[int]:
    """Deterministic shard sizes for a shot budget.

    Every shard holds ``shard_shots`` shots except a possible ragged
    tail.  The layout depends only on ``(shots, shard_shots)`` — never
    on the worker count — which is what makes the per-shard seed tree
    (and therefore every sampled bit) worker-count independent.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if shard_shots < 1:
        raise ValueError("shard_shots must be positive")
    sizes = [shard_shots] * (shots // shard_shots)
    if shots % shard_shots:
        sizes.append(shots % shard_shots)
    return sizes


def shard_seed_tree(seed, num_shards: int) -> list[np.random.SeedSequence]:
    """One independent child ``SeedSequence`` per shard.

    ``seed`` may be an int or a ``SeedSequence``; either way the tree is
    rebuilt from the root's ``(entropy, spawn_key)`` value, so the
    children depend only on the seed *value* and the shard index — not
    on how many times the caller's sequence object has spawned before,
    and not on which worker later consumes a child.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = np.random.SeedSequence(entropy=seed.entropy,
                                      spawn_key=seed.spawn_key)
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(num_shards) if num_shards else []


@dataclass
class PipelineResult:
    """Merged outcome of a sharded sample→decode run.

    ``failures`` counts shots whose predicted observables disagree with
    the sampled ones; ``bp_converged`` concatenates the per-shard BP
    convergence flags in shard order.  ``errors`` holds the merged
    corrections only when the run collected them
    (``collect_errors=True`` — the hot path keeps them worker-local).
    """

    shots: int
    failures: int
    bp_converged: np.ndarray
    num_shards: int
    errors: np.ndarray | None = None

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0

    @property
    def bp_converged_fraction(self) -> float:
        if self.bp_converged.size == 0:
            return 1.0
        return float(self.bp_converged.mean())


@dataclass(frozen=True)
class ExperimentHandle:
    """Picklable recipe for the fused sample→decode pipeline.

    ``decoder`` carries the check matrix, priors and decoder knobs (and
    the backend, which the sampling stage shares); ``observable_matrix``
    maps corrections and true errors to logical observables; ``method``
    selects the sampler: ``"phenomenological"`` draws mechanism errors
    against the check matrix, ``"circuit"`` frame-simulates the circuit
    shipped with each run.
    """

    decoder: DecoderHandle
    observable_matrix: np.ndarray
    method: str = "phenomenological"

    def __post_init__(self) -> None:
        if self.method not in ("phenomenological", "circuit"):
            raise ValueError("method must be 'phenomenological' or 'circuit'")

    @property
    def backend(self) -> str:
        return self.decoder.backend

    def build_state(self) -> "_PipelineState":
        """Construct the per-process sampling + decoding state."""
        return _PipelineState(self)


class _PipelineState:
    """Per-process state: the decoder plus packed projection matrices.

    Built once per process (lazily, on the first shard) and re-priored
    — never rebuilt — on subsequent shards and sweep points, exactly
    like PR 2's worker-side decoder cache.
    """

    def __init__(self, handle: ExperimentHandle) -> None:
        self.handle = handle
        self.decoder = handle.decoder.build()
        if handle.backend == "packed":
            self.packed_check = pack_bits(self.decoder.check_matrix, axis=1)
            self.packed_observable = pack_bits(handle.observable_matrix,
                                               axis=1)
        else:
            self.packed_check = None
            self.packed_observable = None

    # ------------------------------------------------------------------
    def predict_observables(self, errors: np.ndarray) -> np.ndarray:
        """``errors @ observable_matrix.T mod 2`` in the active backend."""
        if self.handle.backend == "packed":
            return packed_matmul(pack_bits(errors, axis=1),
                                 self.packed_observable)
        return (errors @ self.handle.observable_matrix.T) % 2

    def run_shard(self, priors: np.ndarray, circuit: Circuit | None,
                  seed: np.random.SeedSequence, shots: int,
                  collect_errors: bool
                  ) -> tuple[int, np.ndarray, np.ndarray | None]:
        """Sample and decode one shard; returns (failures, flags, errors).

        The single code path shared by the in-process reference and the
        pool workers — bit-identity across worker counts follows from
        everything here being a pure function of the arguments.
        """
        self.decoder.update_priors(priors)
        if self.handle.method == "phenomenological":
            syndromes, observables = sample_phenomenological_shard(
                self.decoder.check_matrix, self.handle.observable_matrix,
                priors, shots, seed, backend=self.handle.backend,
                packed_matrices=(self.packed_check, self.packed_observable)
                if self.handle.backend == "packed" else None,
            )
        else:
            if circuit is None:
                raise ValueError("the circuit method needs a circuit per run")
            sample = sample_circuit_shard(circuit, shots, seed,
                                          backend=self.handle.backend)
            syndromes, observables = sample.detectors, sample.observables
        decoded = self.decoder.decode_batch(syndromes)
        predicted = self.predict_observables(decoded.errors)
        failures = int(
            np.any(predicted.astype(bool) != observables.astype(bool),
                   axis=1).sum()
        )
        return (failures, decoded.bp_converged,
                decoded.errors if collect_errors else None)


# Per-process worker state: the handle arrives once via the pool
# initializer; the pipeline state it describes is built lazily on the
# first shard and re-priored (never rebuilt) on subsequent shards.
_WORKER_HANDLE: ExperimentHandle | None = None
_WORKER_STATE: _PipelineState | None = None


def _init_pipeline_worker(handle: ExperimentHandle) -> None:
    global _WORKER_HANDLE, _WORKER_STATE
    _WORKER_HANDLE = handle
    _WORKER_STATE = None


def _run_pipeline_shard(priors: np.ndarray, circuit: Circuit | None,
                        seed: np.random.SeedSequence, shots: int,
                        collect_errors: bool
                        ) -> tuple[int, np.ndarray, np.ndarray | None]:
    """Sample and decode one shard inside a worker process."""
    global _WORKER_STATE
    if _WORKER_HANDLE is None:
        raise RuntimeError("worker pool was not initialised with a handle")
    if _WORKER_STATE is None:
        _WORKER_STATE = _WORKER_HANDLE.build_state()
    return _WORKER_STATE.run_shard(priors, circuit, seed, shots,
                                   collect_errors)


@dataclass
class ShardedExperiment:
    """Shard a full sample→decode experiment across worker processes.

    Parameters
    ----------
    handle:
        The picklable pipeline recipe shared with every worker.
    workers:
        Worker-process count (``None`` -> 1 = in-process, ``0`` -> one
        per core).  Any value produces bit-identical results at fixed
        ``shard_shots``; with one worker no pool is created at all.
    shard_shots:
        Shots per shard (default: the decoder's ``block_shots``).  Part
        of the determinism key — changing it changes which seed-tree
        child samples which shot, so compare runs at a fixed value.

    The executor is created lazily on the first multi-shard run and
    reused across calls (a sweep pays the process-spawn cost once);
    :meth:`close` — or using the instance as a context manager —
    releases it.
    """

    handle: ExperimentHandle
    workers: int | None = None
    shard_shots: int | None = None
    _executor: object | None = field(default=None, init=False, repr=False)
    _local: _PipelineState | None = field(default=None, init=False,
                                          repr=False)

    def __post_init__(self) -> None:
        self.workers = resolve_workers(self.workers)
        if self.shard_shots is None:
            self.shard_shots = self.handle.decoder.block_shots
        if self.shard_shots < 1:
            raise ValueError("shard_shots must be positive")

    # ------------------------------------------------------------------
    @property
    def local_state(self) -> _PipelineState:
        """The in-process pipeline state (built on first use)."""
        if self._local is None:
            self._local = self.handle.build_state()
        return self._local

    # ------------------------------------------------------------------
    def run(self, shots: int, seed, priors: np.ndarray | None = None,
            circuit: Circuit | None = None,
            collect_errors: bool = False) -> PipelineResult:
        """Sample and decode ``shots`` shots, sharded across the pool.

        ``seed`` roots the shard seed tree (int or ``SeedSequence``;
        see :func:`shard_seed_tree`).  ``priors`` refresh the decoder
        (and, for the phenomenological method, the sampler) at this
        operating point without rebuilding any structure; ``circuit``
        must carry the operating point's noisy circuit for the
        ``"circuit"`` method.  ``collect_errors=True`` additionally
        merges the per-shot corrections into the result (shipping them
        back from the workers — test/debug use, not the hot path).
        """
        if priors is None:
            priors = self.handle.decoder.priors
        priors = np.asarray(priors, dtype=float)
        sizes = shard_layout(shots, self.shard_shots)
        seeds = shard_seed_tree(seed, len(sizes))
        tasks = list(zip(sizes, seeds))
        if self.workers <= 1 or len(tasks) <= 1:
            outcomes = [
                self.local_state.run_shard(priors, circuit, shard_seed,
                                           shard_size, collect_errors)
                for shard_size, shard_seed in tasks
            ]
        else:
            executor = self._ensure_executor()
            futures = [
                executor.submit(_run_pipeline_shard, priors, circuit,
                                shard_seed, shard_size, collect_errors)
                for shard_size, shard_seed in tasks
            ]
            # Merge by submission (shard) order: completion order is
            # scheduler-dependent and must not leak into the result.
            outcomes = [future.result() for future in futures]
        failures = sum(outcome[0] for outcome in outcomes)
        if outcomes:
            bp_converged = np.concatenate([o[1] for o in outcomes])
        else:
            bp_converged = np.zeros(0, dtype=bool)
        errors = None
        if collect_errors:
            if outcomes:
                errors = np.concatenate([o[2] for o in outcomes])
            else:
                errors = np.zeros(
                    (0, self.handle.decoder.check_matrix.shape[1]),
                    dtype=np.uint8,
                )
        return PipelineResult(shots=shots, failures=failures,
                              bp_converged=bp_converged,
                              num_shards=len(sizes), errors=errors)

    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_pipeline_worker,
                initargs=(self.handle,),
            )
        return self._executor

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ShardedExperiment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
