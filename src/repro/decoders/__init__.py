"""Decoders for CSS codes and detector error models.

The paper decodes bivariate bicycle codes with the BP+OSD decoder of
Bravyi et al. and hypergraph product codes with the QuITS decoder —
both are belief-propagation decoders with ordered-statistics
post-processing.  This package provides:

* :class:`~repro.decoders.bp.BeliefPropagationDecoder` — vectorized
  min-sum BP over a binary check matrix with per-mechanism priors.
* :class:`~repro.decoders.bposd.BPOSDDecoder` — BP with OSD-0 /
  exhaustive OSD-E post-processing for shots where BP does not converge.
* :class:`~repro.decoders.lookup.LookupDecoder` — exact maximum
  likelihood decoding by exhaustive enumeration, for tiny models only
  (used to validate the other decoders in tests).
"""

from repro.decoders.bp import BeliefPropagationDecoder, BPResult
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.lookup import LookupDecoder

__all__ = [
    "BeliefPropagationDecoder",
    "BPResult",
    "BPOSDDecoder",
    "LookupDecoder",
]
