"""Belief propagation with ordered-statistics post-processing (BP+OSD).

BP alone fails on quantum LDPC codes whenever degenerate errors create
symmetric, non-converging message configurations.  OSD breaks the tie:
columns of the check matrix are ranked by BP's soft output (most likely
to be in error first) and Gaussian elimination over that ordering
produces a valid correction that matches the syndrome exactly.  OSD-0
keeps the non-pivot columns at zero; OSD-E additionally tries all
low-weight patterns on the ``osd_order`` least-reliable non-pivot
columns and keeps the most likely consistent solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decoders.bp import BeliefPropagationDecoder
from repro.decoders.gf2dense import PackedGF2Matrix

__all__ = ["BPOSDDecoder", "DecodeResult"]


@dataclass
class DecodeResult:
    """Batched decode output.

    ``errors`` is ``(shots, mechanisms)`` uint8; ``bp_converged`` flags
    which shots were resolved by BP alone.
    """

    errors: np.ndarray
    bp_converged: np.ndarray

    @property
    def shots(self) -> int:
        return int(self.errors.shape[0])


class BPOSDDecoder:
    """BP+OSD decoder over an arbitrary binary check matrix."""

    def __init__(self, check_matrix: np.ndarray, priors: np.ndarray,
                 max_iterations: int = 50, osd_order: int = 0,
                 scaling_factor: float = 0.75) -> None:
        self.check_matrix = np.asarray(check_matrix, dtype=np.uint8)
        self.priors = np.asarray(priors, dtype=float)
        self.osd_order = int(osd_order)
        self._bp = BeliefPropagationDecoder(
            self.check_matrix, self.priors,
            max_iterations=max_iterations, scaling_factor=scaling_factor,
        )
        self._packed = PackedGF2Matrix(self.check_matrix)

    @property
    def num_checks(self) -> int:
        return int(self.check_matrix.shape[0])

    @property
    def num_mechanisms(self) -> int:
        return int(self.check_matrix.shape[1])

    # ------------------------------------------------------------------
    def decode_batch(self, syndromes: np.ndarray) -> DecodeResult:
        """Decode a batch of syndromes, OSD-completing BP failures."""
        syndromes = np.atleast_2d(np.asarray(syndromes)).astype(np.uint8)
        bp_result = self._bp.decode_batch(syndromes)
        errors = bp_result.errors.copy()
        for shot in np.nonzero(~bp_result.converged)[0]:
            errors[shot] = self._osd_single(
                syndromes[shot], bp_result.posterior_llrs[shot]
            )
        return DecodeResult(errors=errors, bp_converged=bp_result.converged)

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Decode a single syndrome vector."""
        return self.decode_batch(syndrome[np.newaxis, :]).errors[0]

    # ------------------------------------------------------------------
    def _osd_single(self, syndrome: np.ndarray,
                    posterior_llrs: np.ndarray) -> np.ndarray:
        # Most-likely-to-be-flipped first: ascending LLR.
        column_order = np.argsort(posterior_llrs, kind="stable")
        try:
            solution = self._packed.gauss_jordan_solve(column_order, syndrome)
        except ValueError:
            # Inconsistent system (possible when the DEM does not span the
            # observed syndrome, e.g. under truncated noise enumeration);
            # fall back to the BP hard decision.
            return (posterior_llrs < 0).astype(np.uint8)
        if self.osd_order <= 0:
            return solution
        return self._osd_exhaustive(syndrome, posterior_llrs, column_order,
                                    solution)

    def _osd_exhaustive(self, syndrome, posterior_llrs, column_order,
                        base_solution) -> np.ndarray:
        """OSD-E: exhaust low-weight patterns on the least reliable
        non-pivot columns and keep the most probable consistent solution."""
        probabilities = 1.0 / (1.0 + np.exp(posterior_llrs))
        probabilities = np.clip(probabilities, 1e-12, 1 - 1e-12)
        log_like = np.log(probabilities / (1 - probabilities))

        def solution_score(solution: np.ndarray) -> float:
            return float(solution @ log_like)

        best = base_solution
        best_score = solution_score(base_solution)
        non_pivot = [c for c in column_order if base_solution[c] == 0]
        trial_columns = non_pivot[: self.osd_order]
        for pattern in range(1, 2 ** len(trial_columns)):
            trial_syndrome = syndrome.copy()
            flip_columns = [
                column for bit, column in enumerate(trial_columns)
                if (pattern >> bit) & 1
            ]
            for column in flip_columns:
                trial_syndrome ^= self.check_matrix[:, column]
            try:
                partial = self._packed.gauss_jordan_solve(
                    np.argsort(posterior_llrs, kind="stable"), trial_syndrome
                )
            except ValueError:
                continue
            candidate = partial.copy()
            for column in flip_columns:
                candidate[column] ^= 1
            score = solution_score(candidate)
            if score > best_score:
                best_score = score
                best = candidate
        return best
