"""Belief propagation with ordered-statistics post-processing (BP+OSD).

BP alone fails on quantum LDPC codes whenever degenerate errors create
symmetric, non-converging message configurations.  OSD breaks the tie:
columns of the check matrix are ranked by BP's soft output (most likely
to be in error first) and Gaussian elimination over that ordering
produces a valid correction that matches the syndrome exactly.  OSD-0
keeps the non-pivot columns at zero; OSD-E additionally tries all
low-weight patterns on the ``osd_order`` least-reliable non-pivot
columns and keeps the most likely consistent solution.

Three backends are provided.  ``backend="packed"`` (default) runs BP
with an active-set mask (converged shots drop out of message passing)
and OSD-E with a single Gauss-Jordan factorization per shot that is
reused across all ``2**osd_order`` trial patterns — and shared across
*shots* whose BP posteriors produce the same column order (a keyed
cache in :class:`~repro.decoders.gf2dense.PackedGF2Matrix`, common at
low error rates where posteriors tie).  ``backend="native"`` keeps the
packed decode structure but routes the hot kernels — the fused min-sum
check update, the packed syndrome verification and the OSD
Gauss-Jordan eliminations — through the compiled C tier
(:mod:`repro.linalg.native`), bit-identical to ``"packed"`` and
silently degrading to it on hosts without a C toolchain.
``backend="bool"`` is the reference implementation: full-batch BP and
a fresh elimination per trial pattern.  All return identical
corrections for identical BP soft output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decoders.bp import BeliefPropagationDecoder
from repro.decoders.gf2dense import PackedGF2Matrix

__all__ = ["BPOSDDecoder", "DecodeResult"]


@dataclass
class DecodeResult:
    """Batched decode output.

    ``errors`` is ``(shots, mechanisms)`` uint8; ``bp_converged`` flags
    which shots were resolved by BP alone.
    """

    errors: np.ndarray
    bp_converged: np.ndarray

    @property
    def shots(self) -> int:
        return int(self.errors.shape[0])


class BPOSDDecoder:
    """BP+OSD decoder over an arbitrary binary check matrix."""

    def __init__(self, check_matrix: np.ndarray, priors: np.ndarray,
                 max_iterations: int = 50, osd_order: int = 0,
                 scaling_factor: float = 0.75,
                 backend: str = "packed", block_shots: int = 2048,
                 factor_cache_size: int = 32) -> None:
        if backend not in ("packed", "bool", "native"):
            raise ValueError("backend must be 'packed', 'bool' or 'native'")
        if block_shots < 1:
            raise ValueError("block_shots must be positive")
        self.check_matrix = np.asarray(check_matrix, dtype=np.uint8)
        self.priors = np.asarray(priors, dtype=float)
        self.max_iterations = int(max_iterations)
        self.scaling_factor = float(scaling_factor)
        self.osd_order = int(osd_order)
        self.backend = backend
        self.block_shots = int(block_shots)
        # Cross-shot OSD factorization sharing; each retained entry
        # holds an O(checks^2/8)-byte row transform, so decoders over
        # very large detector sets can shrink or disable (0) the cache.
        self.factor_cache_size = int(factor_cache_size)
        self._bp = BeliefPropagationDecoder(
            self.check_matrix, self.priors,
            max_iterations=max_iterations, scaling_factor=scaling_factor,
            active_set=(backend != "bool"),
            packed_verification=(backend != "bool"),
            native=(backend == "native"),
        )
        self._packed = PackedGF2Matrix(self.check_matrix,
                                       factor_cache_size=factor_cache_size,
                                       native=(backend == "native"))

    @property
    def num_checks(self) -> int:
        return int(self.check_matrix.shape[0])

    @property
    def num_mechanisms(self) -> int:
        return int(self.check_matrix.shape[1])

    @property
    def native_active(self) -> bool:
        """Whether ``backend="native"`` actually bound the C kernel tier.

        ``False`` either because another backend was requested or
        because the host has no working toolchain — in the latter case
        the decoder runs the packed kernels and produces bit-identical
        results, so this flag is informational (benchmarks record it).
        """
        return self._bp._native_kernels is not None

    # ------------------------------------------------------------------
    def update_priors(self, priors: np.ndarray) -> None:
        """Refresh the per-mechanism priors, keeping all decode structure.

        The Tanner graph, sparse incidence matrices and packed check
        matrix depend only on the check matrix, so operating-point
        sweeps can reuse one decoder instance across points.
        """
        self.priors = np.asarray(priors, dtype=float)
        self._bp.update_priors(self.priors)

    # ------------------------------------------------------------------
    def decode_batch(self, syndromes: np.ndarray) -> DecodeResult:
        """Decode a batch of syndromes, OSD-completing BP failures.

        The packed backend decodes in blocks of ``block_shots`` shots so
        BP's ``(shots, edges)`` message temporaries stay memory-bounded;
        shots are decoded independently, so blocking never changes the
        result.  The boolean reference backend processes the whole batch
        at once, as the seed implementation did.
        """
        syndromes = np.atleast_2d(np.asarray(syndromes)).astype(np.uint8)
        shots = syndromes.shape[0]
        block = self.block_shots if self.backend != "bool" else max(shots, 1)
        errors_parts = []
        converged_parts = []
        for start in range(0, shots, block):
            stop = start + block
            bp_result = self._bp.decode_batch(syndromes[start:stop])
            errors = bp_result.errors.copy()
            unconverged = np.nonzero(~bp_result.converged)[0]
            if unconverged.size:
                # One vectorized argsort over every unconverged shot of
                # the block; per-row stable argsort is identical to the
                # per-shot call it replaces, so corrections are
                # unchanged — only the sort dispatch overhead goes.
                column_orders = np.argsort(
                    bp_result.posterior_llrs[unconverged], axis=1,
                    kind="stable",
                )
            for row, shot in enumerate(unconverged):
                errors[shot] = self._osd_single(
                    syndromes[start + shot], bp_result.posterior_llrs[shot],
                    column_order=column_orders[row],
                )
            errors_parts.append(errors)
            converged_parts.append(bp_result.converged)
        if not errors_parts:  # shots == 0
            return DecodeResult(
                errors=np.zeros((0, self.num_mechanisms), dtype=np.uint8),
                bp_converged=np.zeros(0, dtype=bool),
            )
        return DecodeResult(errors=np.concatenate(errors_parts),
                            bp_converged=np.concatenate(converged_parts))

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Decode a single syndrome vector."""
        return self.decode_batch(syndrome[np.newaxis, :]).errors[0]

    # ------------------------------------------------------------------
    def _osd_single(self, syndrome: np.ndarray,
                    posterior_llrs: np.ndarray,
                    column_order: np.ndarray | None = None) -> np.ndarray:
        if column_order is None:
            # Most-likely-to-be-flipped first: ascending LLR.  Batch
            # callers pass the order in (one argsort across all
            # unconverged shots); this is the single-shot fallback.
            column_order = np.argsort(posterior_llrs, kind="stable")
        if self.backend != "bool" and self.osd_order > 0:
            return self._osd_factored(syndrome, posterior_llrs, column_order)
        try:
            if self.backend != "bool":
                # OSD-0 solves each syndrome once, but shots whose BP
                # posteriors tie on the same column order (common at low
                # error rates) replay a shared elimination — identical
                # solutions, see PackedGF2Matrix.solve_ordered.
                solution = self._packed.solve_ordered(column_order, syndrome)
            else:
                solution = self._packed.gauss_jordan_solve(column_order,
                                                           syndrome)
        except ValueError:
            # Inconsistent system (possible when the DEM does not span the
            # observed syndrome, e.g. under truncated noise enumeration);
            # fall back to the BP hard decision.
            return (posterior_llrs < 0).astype(np.uint8)
        if self.osd_order <= 0:
            return solution
        return self._osd_exhaustive(syndrome, posterior_llrs, column_order,
                                    solution)

    # ------------------------------------------------------------------
    def _osd_factored(self, syndrome: np.ndarray,
                      posterior_llrs: np.ndarray,
                      column_order: np.ndarray) -> np.ndarray:
        """OSD with one elimination per shot, shared by all trial patterns."""
        factor = self._packed.factorize(column_order)
        reduced = factor.reduce_syndrome(syndrome)
        try:
            base_solution = factor.solution_from_reduced(reduced)
        except ValueError:
            # Inconsistent system: same fallback as the reference path.
            return (posterior_llrs < 0).astype(np.uint8)
        if self.osd_order <= 0:
            return base_solution

        log_like = self._osd_log_likelihoods(posterior_llrs)

        best = base_solution
        best_score = float(base_solution @ log_like)
        non_pivot = [c for c in column_order if base_solution[c] == 0]
        trial_columns = non_pivot[: self.osd_order]
        # Flipping column c XORs H[:, c] into the syndrome; in the
        # reduced basis that is the reduced column T @ H[:, c], so each
        # trial solve is a handful of XORs instead of an elimination.
        reduced_columns = [factor.reduced_column(c) for c in trial_columns]
        for pattern in range(1, 2 ** len(trial_columns)):
            trial_reduced = reduced.copy()
            flip_columns = []
            for bit, column in enumerate(trial_columns):
                if (pattern >> bit) & 1:
                    flip_columns.append(column)
                    trial_reduced ^= reduced_columns[bit]
            try:
                candidate = factor.solution_from_reduced(trial_reduced)
            except ValueError:
                continue
            for column in flip_columns:
                candidate[column] ^= 1
            score = float(candidate @ log_like)
            if score > best_score:
                best_score = score
                best = candidate
        return best

    # ------------------------------------------------------------------
    @staticmethod
    def _osd_log_likelihoods(posterior_llrs: np.ndarray) -> np.ndarray:
        probabilities = 1.0 / (1.0 + np.exp(posterior_llrs))
        probabilities = np.clip(probabilities, 1e-12, 1 - 1e-12)
        return np.log(probabilities / (1 - probabilities))

    def _osd_exhaustive(self, syndrome, posterior_llrs, column_order,
                        base_solution) -> np.ndarray:
        """OSD-E reference: exhaust low-weight patterns on the least
        reliable non-pivot columns, re-eliminating per trial pattern."""
        log_like = self._osd_log_likelihoods(posterior_llrs)

        def solution_score(solution: np.ndarray) -> float:
            return float(solution @ log_like)

        best = base_solution
        best_score = solution_score(base_solution)
        non_pivot = [c for c in column_order if base_solution[c] == 0]
        trial_columns = non_pivot[: self.osd_order]
        for pattern in range(1, 2 ** len(trial_columns)):
            trial_syndrome = syndrome.copy()
            flip_columns = [
                column for bit, column in enumerate(trial_columns)
                if (pattern >> bit) & 1
            ]
            for column in flip_columns:
                trial_syndrome ^= self.check_matrix[:, column]
            try:
                partial = self._packed.gauss_jordan_solve(
                    column_order, trial_syndrome
                )
            except ValueError:
                continue
            candidate = partial.copy()
            for column in flip_columns:
                candidate[column] ^= 1
            score = solution_score(candidate)
            if score > best_score:
                best_score = score
                best = candidate
        return best
