"""Exact maximum-likelihood decoding by exhaustive enumeration.

Only usable for very small error models (at most ~20 mechanisms); exists
to validate the BP and BP+OSD decoders in unit tests.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["LookupDecoder"]


class LookupDecoder:
    """Brute-force decoder over all error subsets up to ``max_weight``."""

    def __init__(self, check_matrix: np.ndarray, priors: np.ndarray,
                 max_weight: int | None = None) -> None:
        self.check_matrix = np.asarray(check_matrix, dtype=np.uint8)
        self.priors = np.asarray(priors, dtype=float)
        num_mechanisms = self.check_matrix.shape[1]
        if num_mechanisms > 22:
            raise ValueError(
                "LookupDecoder is for tiny models only "
                f"({num_mechanisms} mechanisms is too many)"
            )
        self.max_weight = max_weight if max_weight is not None else num_mechanisms
        self._table = self._build_table()

    def _build_table(self) -> dict[bytes, np.ndarray]:
        num_mechanisms = self.check_matrix.shape[1]
        log_probs = np.log(np.clip(self.priors, 1e-15, 1 - 1e-15))
        log_anti = np.log(np.clip(1 - self.priors, 1e-15, 1 - 1e-15))
        table: dict[bytes, tuple[float, np.ndarray]] = {}
        for weight in range(self.max_weight + 1):
            for subset in itertools.combinations(range(num_mechanisms), weight):
                error = np.zeros(num_mechanisms, dtype=np.uint8)
                error[list(subset)] = 1
                syndrome = (self.check_matrix @ error) % 2
                key = syndrome.astype(np.uint8).tobytes()
                likelihood = float(
                    error @ log_probs + (1 - error) @ log_anti
                )
                if key not in table or likelihood > table[key][0]:
                    table[key] = (likelihood, error)
        return {key: value[1] for key, value in table.items()}

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Most likely error consistent with the syndrome."""
        key = np.asarray(syndrome, dtype=np.uint8).tobytes()
        if key not in self._table:
            return np.zeros(self.check_matrix.shape[1], dtype=np.uint8)
        return self._table[key].copy()

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        return np.array([self.decode(s) for s in syndromes], dtype=np.uint8)
