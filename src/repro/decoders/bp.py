"""Vectorized min-sum belief propagation over GF(2) check matrices.

The decoder operates on the Tanner graph of an arbitrary binary check
matrix (either a code's parity-check matrix or a circuit-level detector
error model) with independent prior probabilities per error mechanism.
All shots are decoded simultaneously: messages are stored as
``(shots, edges)`` arrays and check-node updates use segmented
reductions, so the Python-level loop is only over BP iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.linalg.bitops import pack_bits, packed_matmul_words

__all__ = ["BeliefPropagationDecoder", "BPResult"]


@dataclass
class BPResult:
    """Output of a batched BP decode.

    ``errors`` is the hard-decision error estimate per shot
    (``(shots, mechanisms)`` uint8), ``converged`` marks shots whose
    estimate reproduces the syndrome, and ``posterior_llrs`` holds the
    final per-mechanism log-likelihood ratios (positive = likely no
    error), which OSD post-processing consumes.
    """

    errors: np.ndarray
    converged: np.ndarray
    posterior_llrs: np.ndarray
    iterations: int


class BeliefPropagationDecoder:
    """Min-sum BP with optional normalisation (scaling) factor."""

    def __init__(self, check_matrix: np.ndarray, priors: np.ndarray,
                 max_iterations: int = 50, scaling_factor: float = 0.75,
                 clip_llr: float = 30.0, active_set: bool = False,
                 packed_verification: bool | None = None,
                 native: bool = False) -> None:
        check_matrix = np.asarray(check_matrix, dtype=np.uint8)
        if check_matrix.ndim != 2:
            raise ValueError("check matrix must be 2-D")
        self.check_matrix = check_matrix
        self.max_iterations = int(max_iterations)
        self.scaling_factor = float(scaling_factor)
        self.clip_llr = float(clip_llr)
        self.active_set = bool(active_set)
        # Syndrome verification backend: the packed path keeps syndromes
        # as 64-check words for the whole decode and verifies each
        # iteration's hard decision with word-level AND/popcount/XOR;
        # it defaults to following ``active_set`` (i.e. the packed
        # decoder backend) and produces bit-identical results to the
        # sparse reference verification.
        self.packed_verification = (
            self.active_set if packed_verification is None
            else bool(packed_verification)
        )
        # Native kernel tier: the fused C min-sum check update and the
        # one-pass packed syndrome verification.  Both are bit-identical
        # to the numpy paths (the min-sum performs the identical IEEE
        # operations in the identical order), and when the host has no
        # C toolchain the probe returns None and this decoder silently
        # behaves exactly like a ``native=False`` one.
        self._native_kernels = None
        if native:
            from repro.linalg.native import get_kernels

            self._native_kernels = get_kernels()
        self.update_priors(priors)
        self._packed_check_rows = (
            pack_bits(check_matrix, axis=1) if self.packed_verification
            else None
        )

        checks, variables = np.nonzero(check_matrix)
        order = np.lexsort((variables, checks))
        self._edge_check = checks[order]
        self._edge_var = variables[order]
        self._num_edges = self._edge_check.shape[0]
        # Loop-invariant edge-position vector of the check update,
        # hoisted out of the per-iteration hot path.
        self._edge_positions = np.arange(self._num_edges)
        # reduceat segment starts for edges grouped by check index.
        self._check_starts = np.searchsorted(
            self._edge_check, np.arange(check_matrix.shape[0])
        )
        # Sparse edge -> variable incidence used to accumulate messages.
        self._edge_to_var = sparse.csr_matrix(
            (
                np.ones(self._num_edges),
                (self._edge_var, np.arange(self._num_edges)),
            ),
            shape=(check_matrix.shape[1], self._num_edges),
        )
        # Sparse check matrix used for fast syndrome verification.
        self._sparse_check = sparse.csr_matrix(check_matrix.astype(np.int8))

    @property
    def num_checks(self) -> int:
        return int(self.check_matrix.shape[0])

    @property
    def num_mechanisms(self) -> int:
        return int(self.check_matrix.shape[1])

    # ------------------------------------------------------------------
    def update_priors(self, priors: np.ndarray) -> None:
        """Swap in new per-mechanism priors without rebuilding the graph.

        The Tanner-graph edge structure depends only on the check matrix,
        so sweeps that vary operating points (latency, physical error
        rate) can reuse one decoder and merely refresh the prior LLRs.
        """
        priors = np.asarray(priors, dtype=float)
        if priors.shape[0] != self.check_matrix.shape[1]:
            raise ValueError("need one prior per check-matrix column")
        if np.any(priors <= 0) or np.any(priors >= 1):
            priors = np.clip(priors, 1e-12, 1 - 1e-12)
        self.priors = priors
        self._prior_llrs = np.clip(
            np.log((1 - priors) / priors), -self.clip_llr, self.clip_llr
        )

    # ------------------------------------------------------------------
    def decode_batch(self, syndromes: np.ndarray) -> BPResult:
        """Decode a batch of syndromes (shape ``(shots, num_checks)``)."""
        syndromes = np.atleast_2d(np.asarray(syndromes)).astype(bool)
        if syndromes.shape[1] != self.num_checks:
            raise ValueError(
                f"syndrome length {syndromes.shape[1]} != {self.num_checks}"
            )
        shots = syndromes.shape[0]
        if self._num_edges == 0:
            errors = np.zeros((shots, self.num_mechanisms), dtype=np.uint8)
            converged = ~syndromes.any(axis=1)
            return BPResult(errors, converged,
                            np.tile(self._prior_llrs, (shots, 1)), 0)

        edge_var = self._edge_var
        edge_check = self._edge_check
        starts = self._check_starts
        prior = self._prior_llrs
        active_set = self.active_set

        # Messages variable -> check, initialised with the priors.  With
        # the active-set optimisation these arrays only ever hold rows
        # for the still-unconverged shots.
        var_to_check = np.tile(prior[edge_var], (shots, 1))
        syndrome_signs = np.where(syndromes, -1.0, 1.0)  # (shots, checks)
        # Packed verification keeps the syndromes as words from here on:
        # one XOR per 64 checks decides consistency each iteration.
        syndrome_words = (
            pack_bits(syndromes, axis=1) if self.packed_verification else None
        )

        errors_out = np.zeros((shots, self.num_mechanisms), dtype=np.uint8)
        posterior_out = np.tile(prior, (shots, 1))
        converged_out = np.zeros(shots, dtype=bool)
        active = np.arange(shots)
        iterations_used = 0

        for iteration in range(1, self.max_iterations + 1):
            iterations_used = iteration
            # Only the active-set path pays for subsetting; the reference
            # path always works on the full arrays.
            signs_active = syndrome_signs[active] if active_set else syndrome_signs
            check_to_var = self._check_update(
                var_to_check, signs_active, edge_check, starts,
                active.shape[0]
            )
            # Variable update: total posterior and extrinsic messages.
            accumulated = (self._edge_to_var @ check_to_var.T).T
            posterior = prior[np.newaxis, :] + accumulated
            var_to_check = posterior[:, edge_var] - check_to_var
            np.clip(var_to_check, -self.clip_llr, self.clip_llr,
                    out=var_to_check)

            errors = (posterior < 0).astype(np.uint8)
            if self.packed_verification:
                words_active = (
                    syndrome_words[active] if active_set else syndrome_words
                )
                achieved_words = packed_matmul_words(
                    pack_bits(errors, axis=1), self._packed_check_rows,
                    backend="native" if self._native_kernels is not None
                    else "packed",
                )
                satisfied = ~np.any(achieved_words ^ words_active, axis=1)
            else:
                syndromes_active = (
                    syndromes[active] if active_set else syndromes
                )
                achieved = (self._sparse_check @ errors.T).T % 2
                satisfied = np.all(achieved.astype(bool) == syndromes_active,
                                   axis=1)

            if active_set:
                # Converged shots freeze at their first consistent state
                # and drop out of all further message passing.
                done = active[satisfied]
                errors_out[done] = errors[satisfied]
                posterior_out[done] = posterior[satisfied]
                converged_out[done] = True
                keep = ~satisfied
                if iteration == self.max_iterations:
                    # Last chance: report the final state of the shots
                    # that never converged.
                    rest = active[keep]
                    errors_out[rest] = errors[keep]
                    posterior_out[rest] = posterior[keep]
                active = active[keep]
                if active.size == 0:
                    break
                var_to_check = var_to_check[keep]
            else:
                # Reference semantics: every shot keeps iterating and the
                # final iteration's state is reported for all of them.
                errors_out = errors
                posterior_out = posterior
                converged_out = satisfied
                if satisfied.all():
                    break

        return BPResult(
            errors=errors_out,
            converged=converged_out,
            posterior_llrs=posterior_out,
            iterations=iterations_used,
        )

    # ------------------------------------------------------------------
    def _check_update(self, var_to_check, syndrome_signs, edge_check,
                      starts, shots):
        """Scaled min-sum check-node update, vectorized over shots and edges.

        With the native tier bound, the whole update — sign products,
        first/second minima, clipping and scaling — runs as one fused C
        pass over the edge segments, bit-identical to the numpy
        expression below (same IEEE operations in the same order).
        """
        if self._native_kernels is not None:
            return self._native_kernels.min_sum_check_update(
                var_to_check, syndrome_signs, self._check_starts,
                self.scaling_factor, self.clip_llr,
            )
        abs_messages = np.abs(var_to_check)
        signs = np.where(var_to_check < 0, -1.0, 1.0)

        # Product of signs per check, then exclude self by dividing.
        sign_products = np.multiply.reduceat(signs, starts, axis=1)
        sign_excluding_self = sign_products[:, edge_check] * signs

        # Minimum excluding self: min and "second minimum" per check.  Only
        # the *first* edge attaining the minimum in each check group is
        # treated as "the minimum edge"; tied edges keep the minimum as
        # their excluding-self value (another copy of it remains).
        min_per_check = np.minimum.reduceat(abs_messages, starts, axis=1)
        min_at_edges = min_per_check[:, edge_check]
        edge_positions = self._edge_positions
        candidate_positions = np.where(
            abs_messages <= min_at_edges, edge_positions, self._num_edges
        )
        first_min_position = np.minimum.reduceat(
            candidate_positions, starts, axis=1
        )
        is_first_minimum = edge_positions == first_min_position[:, edge_check]
        masked = np.where(is_first_minimum, np.inf, abs_messages)
        second_min_per_check = np.minimum.reduceat(masked, starts, axis=1)
        second_at_edges = second_min_per_check[:, edge_check]
        min_excluding_self = np.where(
            is_first_minimum, second_at_edges, min_at_edges
        )
        # Degree-1 checks have no other edges: message magnitude is +inf
        # conceptually; clip instead.
        min_excluding_self = np.minimum(min_excluding_self, self.clip_llr)

        total_sign = syndrome_signs[:, edge_check] * sign_excluding_self
        return self.scaling_factor * total_sign * min_excluding_self
