"""Bit-packed GF(2) elimination used by the OSD post-processor.

OSD re-solves the syndrome equation with columns ordered by BP soft
reliability for every shot whose BP decode did not converge.  Packing
rows into bytes keeps each elimination fast enough to run inside a
Monte-Carlo loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PackedGF2Matrix"]


class PackedGF2Matrix:
    """A dense GF(2) matrix packed along rows (8 columns per byte)."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D matrix")
        self.num_rows, self.num_cols = matrix.shape
        self._packed = np.packbits(matrix, axis=1)

    def column_bit(self, rows: np.ndarray, column: int) -> np.ndarray:
        """Bit values of ``column`` for the given row indices."""
        byte_index = column // 8
        shift = 7 - (column % 8)
        return (self._packed[rows, byte_index] >> shift) & 1

    def gauss_jordan_solve(self, column_order: np.ndarray,
                           syndrome: np.ndarray) -> np.ndarray:
        """Solve ``M x = syndrome`` preferring early columns as pivots.

        Performs Gauss-Jordan elimination visiting columns in
        ``column_order``; pivot columns take the reduced syndrome value
        and all other columns are set to zero (the OSD-0 solution).
        Returns the solution in the *original* column indexing.
        Raises ``ValueError`` when the system is inconsistent.
        """
        packed = self._packed.copy()
        syndrome = np.asarray(syndrome, dtype=np.uint8).copy()
        if syndrome.shape[0] != self.num_rows:
            raise ValueError("syndrome length does not match row count")

        pivot_rows: list[int] = []
        pivot_cols: list[int] = []
        next_pivot_row = 0
        row_indices = np.arange(self.num_rows)

        for column in column_order:
            if next_pivot_row >= self.num_rows:
                break
            byte_index = column // 8
            shift = 7 - (column % 8)
            column_bits = (packed[:, byte_index] >> shift) & 1
            candidates = np.nonzero(column_bits[next_pivot_row:])[0]
            if candidates.size == 0:
                continue
            pivot = next_pivot_row + int(candidates[0])
            if pivot != next_pivot_row:
                packed[[next_pivot_row, pivot]] = packed[[pivot, next_pivot_row]]
                syndrome[[next_pivot_row, pivot]] = (
                    syndrome[[pivot, next_pivot_row]]
                )
            column_bits = (packed[:, byte_index] >> shift) & 1
            eliminate = row_indices[
                (column_bits == 1) & (row_indices != next_pivot_row)
            ]
            if eliminate.size:
                packed[eliminate] ^= packed[next_pivot_row]
                syndrome[eliminate] ^= syndrome[next_pivot_row]
            pivot_rows.append(next_pivot_row)
            pivot_cols.append(int(column))
            next_pivot_row += 1

        # Remaining rows must have zero syndrome for consistency.
        if next_pivot_row < self.num_rows and syndrome[next_pivot_row:].any():
            raise ValueError("inconsistent linear system over GF(2)")

        solution = np.zeros(self.num_cols, dtype=np.uint8)
        for row, column in zip(pivot_rows, pivot_cols):
            solution[column] = syndrome[row]
        return solution
