"""Bit-packed GF(2) elimination used by the OSD post-processor.

OSD re-solves the syndrome equation with columns ordered by BP soft
reliability for every shot whose BP decode did not converge.  Packing
rows into bytes keeps each elimination fast enough to run inside a
Monte-Carlo loop.

A factorization depends only on the matrix and the column order — never
on the syndrome — and at low error rates many shots produce the *same*
BP posterior ordering (ties resolve identically under the stable
argsort).  :class:`PackedGF2Matrix` therefore keeps a small keyed cache
of factorizations: shots that repeat a column order replay the stored
elimination (two cheap packed products) instead of eliminating from
scratch, with bit-identical solutions by construction.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["PackedGF2Matrix", "GF2Factorization"]


class PackedGF2Matrix:
    """A dense GF(2) matrix packed along rows (8 columns per byte).

    ``factor_cache_size`` bounds the keyed factorization cache (see the
    module docstring); ``0`` disables caching entirely.  ``native=True``
    runs every elimination through the compiled kernel tier
    (:mod:`repro.linalg.native`) when the host toolchain provides it —
    pivot selection and row operations are identical, so ranks, pivot
    columns and solutions are bit-identical to the numpy path; when the
    tier is unavailable the flag silently degrades to the numpy
    elimination.
    """

    def __init__(self, matrix: np.ndarray,
                 factor_cache_size: int = 32,
                 native: bool = False) -> None:
        matrix = np.asarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D matrix")
        self.num_rows, self.num_cols = matrix.shape
        self._packed = np.packbits(matrix, axis=1)
        self._kernels = None
        if native:
            from repro.linalg.native import get_kernels

            self._kernels = get_kernels()
        # Keyed factorization cache: column-order bytes -> factorization,
        # or None for an order seen exactly once (not yet worth the
        # row-transform accumulation).  LRU-bounded so OSD-heavy
        # workloads with non-repeating orders stay memory-flat.
        self._factor_cache: OrderedDict[bytes, GF2Factorization | None] = \
            OrderedDict()
        self._factor_cache_size = int(factor_cache_size)
        self.factor_cache_hits = 0
        self.factor_cache_builds = 0

    def column_bit(self, rows: np.ndarray, column: int) -> np.ndarray:
        """Bit values of ``column`` for the given row indices."""
        byte_index = column // 8
        shift = 7 - (column % 8)
        return (self._packed[rows, byte_index] >> shift) & 1

    # ------------------------------------------------------------------
    @staticmethod
    def _order_key(column_order: np.ndarray) -> bytes:
        return np.ascontiguousarray(column_order, dtype=np.intp).tobytes()

    def _cache_store(self, key: bytes,
                     value: "GF2Factorization | None") -> None:
        self._factor_cache[key] = value
        self._factor_cache.move_to_end(key)
        while len(self._factor_cache) > self._factor_cache_size:
            self._factor_cache.popitem(last=False)

    def gauss_jordan_solve(self, column_order: np.ndarray,
                           syndrome: np.ndarray) -> np.ndarray:
        """Solve ``M x = syndrome`` preferring early columns as pivots.

        Performs Gauss-Jordan elimination visiting columns in
        ``column_order``; pivot columns take the reduced syndrome value
        and all other columns are set to zero (the OSD-0 solution).
        Returns the solution in the *original* column indexing.
        Raises ``ValueError`` when the system is inconsistent.
        """
        packed = self._packed.copy()
        syndrome = np.ascontiguousarray(syndrome, dtype=np.uint8).copy()
        if syndrome.shape[0] != self.num_rows:
            raise ValueError("syndrome length does not match row count")

        rank, pivot_cols = _gauss_jordan(packed, syndrome, column_order,
                                         kernels=self._kernels)

        # Remaining rows must have zero syndrome for consistency.
        if rank < self.num_rows and syndrome[rank:].any():
            raise ValueError("inconsistent linear system over GF(2)")

        solution = np.zeros(self.num_cols, dtype=np.uint8)
        solution[pivot_cols] = syndrome[:rank]
        return solution

    def factorize(self, column_order: np.ndarray,
                  cache: bool = True) -> "GF2Factorization":
        """Eliminate once under ``column_order`` for repeated solves.

        Pivot selection depends only on the matrix and the column order,
        never on the right-hand side, so OSD-E can factor once per shot
        and reuse the factorization across all trial syndromes instead
        of re-eliminating from scratch for each pattern.

        With ``cache=True`` (default) the factorization is additionally
        shared **across shots**: shots whose BP posteriors produce the
        same column order — common at low error rates, where most
        unconverged shots tie on the prior ordering — get the stored
        elimination back instead of recomputing it.  A cached
        factorization is the same deterministic object a fresh build
        would produce, so corrections are bit-identical either way.
        """
        if not cache or self._factor_cache_size <= 0:
            return GF2Factorization(self, column_order)
        key = self._order_key(column_order)
        entry = self._factor_cache.get(key)
        if isinstance(entry, GF2Factorization):
            self.factor_cache_hits += 1
            self._factor_cache.move_to_end(key)
            return entry
        factor = GF2Factorization(self, column_order)
        self.factor_cache_builds += 1
        self._cache_store(key, factor)
        return factor

    def solve_ordered(self, column_order: np.ndarray,
                      syndrome: np.ndarray) -> np.ndarray:
        """OSD-0 solve that shares eliminations across repeating orders.

        Identical output to :meth:`gauss_jordan_solve` (including the
        ``ValueError`` on inconsistent systems), but adaptive about the
        work: the first time a column order is seen it solves directly
        (no row-transform accumulation); an order that *repeats* is
        factorized on its second sighting and every later shot with the
        same order replays the stored elimination.
        """
        if self._factor_cache_size <= 0:
            return self.gauss_jordan_solve(column_order, syndrome)
        key = self._order_key(column_order)
        entry = self._factor_cache.get(key)
        if isinstance(entry, GF2Factorization):
            self.factor_cache_hits += 1
            self._factor_cache.move_to_end(key)
            return entry.solve(syndrome)
        if key in self._factor_cache:
            # Second sighting: the order repeats, so the factorization
            # will pay for itself on the shots still to come.
            factor = GF2Factorization(self, column_order)
            self.factor_cache_builds += 1
            self._cache_store(key, factor)
            return factor.solve(syndrome)
        self._cache_store(key, None)
        return self.gauss_jordan_solve(column_order, syndrome)


def _gauss_jordan(packed: np.ndarray, carry: np.ndarray,
                  column_order: np.ndarray,
                  kernels=None) -> tuple[int, list[int]]:
    """In-place Gauss-Jordan elimination on a column-packed matrix.

    Visits columns in ``column_order``; every row swap and row XOR is
    mirrored onto ``carry`` (a syndrome vector for a one-off solve, or
    the packed identity when accumulating the row transform of a
    factorization).  Returns ``(rank, pivot_cols)``; pivot ``i`` lives
    in row ``i``.

    ``kernels`` (a bound :class:`repro.linalg.native.NativeKernels`)
    runs the identical elimination in C — same pivot rule, same row
    operations, bit-identical outputs.
    """
    if kernels is not None:
        return kernels.gauss_jordan(packed, carry, column_order)
    num_rows = packed.shape[0]
    pivot_cols: list[int] = []
    next_pivot_row = 0
    row_indices = np.arange(num_rows)

    for column in column_order:
        if next_pivot_row >= num_rows:
            break
        byte_index = column // 8
        shift = 7 - (column % 8)
        column_bits = (packed[:, byte_index] >> shift) & 1
        candidates = np.nonzero(column_bits[next_pivot_row:])[0]
        if candidates.size == 0:
            continue
        pivot = next_pivot_row + int(candidates[0])
        if pivot != next_pivot_row:
            packed[[next_pivot_row, pivot]] = packed[[pivot, next_pivot_row]]
            carry[[next_pivot_row, pivot]] = carry[[pivot, next_pivot_row]]
        column_bits = (packed[:, byte_index] >> shift) & 1
        eliminate = row_indices[
            (column_bits == 1) & (row_indices != next_pivot_row)
        ]
        if eliminate.size:
            packed[eliminate] ^= packed[next_pivot_row]
            carry[eliminate] ^= carry[next_pivot_row]
        pivot_cols.append(int(column))
        next_pivot_row += 1

    return next_pivot_row, pivot_cols


class GF2Factorization:
    """A Gauss-Jordan factorization of a packed GF(2) matrix.

    Stores the reduced matrix ``R = T @ M`` (columns packed 8 per byte)
    together with the row-operation transform ``T`` (also bit-packed),
    the pivot columns in elimination order, and the rank.  Solving
    ``M x = s`` for any ``s`` is then two cheap steps: reduce the
    syndrome (``y = T s``), check consistency of the rows below the
    rank, and read the pivot values off ``y``.
    """

    def __init__(self, matrix: PackedGF2Matrix, column_order: np.ndarray) -> None:
        self.num_rows = matrix.num_rows
        self.num_cols = matrix.num_cols
        reduced = matrix._packed.copy()
        transform = np.packbits(np.identity(self.num_rows, dtype=np.uint8),
                                axis=1)
        rank, pivot_cols = _gauss_jordan(reduced, transform, column_order,
                                         kernels=matrix._kernels)
        self._reduced = reduced
        self._transform = transform
        self.rank = rank
        self.pivot_cols = np.array(pivot_cols, dtype=np.intp)

    # ------------------------------------------------------------------
    def reduce_syndrome(self, syndrome: np.ndarray) -> np.ndarray:
        """Apply the stored row transform: ``T @ syndrome`` over GF(2)."""
        syndrome = np.asarray(syndrome, dtype=np.uint8)
        if syndrome.shape[0] != self.num_rows:
            raise ValueError("syndrome length does not match row count")
        packed_syndrome = np.packbits(syndrome)
        anded = self._transform & packed_syndrome[np.newaxis, :]
        counts = _popcount_bytes(anded).sum(axis=1)
        return (counts & 1).astype(np.uint8)

    def reduced_column(self, column: int) -> np.ndarray:
        """Bits of column ``column`` of the reduced matrix ``T @ M``."""
        column = int(column)
        byte_index = column // 8
        shift = 7 - (column % 8)
        return ((self._reduced[:, byte_index] >> shift) & 1).astype(np.uint8)

    def solution_from_reduced(self, reduced_syndrome: np.ndarray) -> np.ndarray:
        """OSD-0 solution for an already-reduced syndrome.

        Raises ``ValueError`` when rows beyond the rank carry non-zero
        reduced syndrome (inconsistent system) — matching
        :meth:`PackedGF2Matrix.gauss_jordan_solve` exactly.
        """
        if self.rank < self.num_rows and reduced_syndrome[self.rank:].any():
            raise ValueError("inconsistent linear system over GF(2)")
        solution = np.zeros(self.num_cols, dtype=np.uint8)
        solution[self.pivot_cols] = reduced_syndrome[:self.rank]
        return solution

    def solve(self, syndrome: np.ndarray) -> np.ndarray:
        """Solve ``M x = syndrome``; identical output to a fresh
        Gauss-Jordan elimination under the same column order."""
        return self.solution_from_reduced(self.reduce_syndrome(syndrome))


if hasattr(np, "bitwise_count"):
    def _popcount_bytes(values: np.ndarray) -> np.ndarray:
        return np.bitwise_count(values)
else:  # pragma: no cover - exercised only on numpy < 2.0
    _BYTE_POPCOUNT = np.array([bin(i).count("1") for i in range(256)],
                              dtype=np.uint8)

    def _popcount_bytes(values: np.ndarray) -> np.ndarray:
        return _BYTE_POPCOUNT[values]
