"""Command-line interface: run the paper's experiments without writing code.

Subcommands mirror the library's main entry points:

``codes``
    List the built-in code instances and their parameters.
``compile``
    Compile one round of syndrome extraction for a code onto one or more
    codesigns and report latency, spatial cost and parallelization.
``memory``
    Run a hardware-aware memory experiment (codesign latency -> noise ->
    BP+OSD decoding -> logical error rate) over a physical-error sweep.
``campaign``
    Run a whole campaign of sweeps — a builtin spec such as
    ``paper_figures`` or a JSON spec file — against one global shot
    budget and one worker pool, with a resumable result store.  With
    ``--join``, become one worker of a multi-host campaign: N joined
    processes sharing one store partition the budget by claiming
    points under TTL'd leases and produce byte-identical tables.
``serve``
    Run the campaign job service (``docs/service.md``): an async HTTP
    API where submitted specs queue onto one executor thread sharing
    one store and one worker pool — concurrent submissions of the same
    spec+budget coalesce by content fingerprint, finished points are
    cache hits for every later job, and SIGTERM drains gracefully.
``store``
    Result-store tooling: ``merge`` folds per-host stores into one
    canonical file (bit-identical under any input order), ``verify``
    checks a store for corruption and lease-log violations, ``repair``
    drops what ``verify`` flagged.
``speedup``
    Print the Figure 3 parallel-vs-serial speedup table.

Examples
--------
::

    python -m repro codes
    python -m repro compile "BB [[72,12,6]]" --codesigns baseline cyclone
    python -m repro memory "HGP [[225,9,6]]" --codesign cyclone \
        --physical-error-rates 1e-4 3e-4 1e-3 --shots 200 --output ler.csv
    python -m repro memory "BB [[72,12,6]]" --shots 200000 --workers 4
    python -m repro memory "BB [[72,12,6]]" --shots 20000 \
        --physical-error-rates 1e-4 3e-4 1e-3 3e-3 \
        --target-precision 0.002      # adaptive: stop each point early
    python -m repro campaign paper_figures --store figures.jsonl --workers 0
    python -m repro campaign paper_figures --store figures.jsonl \
        --assert-no-sampling          # resumed: must re-sample nothing
    python -m repro campaign paper_figures --join --worker-id blue \
        --store /shared/figures.jsonl # one worker of a multi-host run
    python -m repro store merge merged.jsonl hostA.jsonl hostB.jsonl
    python -m repro store verify merged.jsonl
    python -m repro serve --store served.jsonl --port 8731 --workers 0
    python -m repro speedup

Exit codes
----------
The ``campaign`` subcommand distinguishes its outcomes (pinned by
``tests/test_cli.py``):

====  ==============================================================
   0  success
   1  crash (unexpected error, or an injected fault firing)
   2  usage error (bad spec, unknown names, bad fault plan, ...)
   3  ``--assert-no-sampling`` violated: the run sampled fresh shots
   4  scenario oracle mismatch (minimized scenario written to disk)
   5  interrupted gracefully (SIGINT/SIGTERM or an injected
      interrupt): everything finalised was flushed to the store and a
      rerun against the same store resumes the remainder
====  ==============================================================

``serve`` (also pinned by ``tests/test_cli.py``) exits 0 after a
graceful SIGTERM/SIGINT drain (queued jobs cancelled, the running job
stopped at its next point boundary with finalised points flushed — the
store stays resumable), 1 on a crash (e.g. the port is taken) and 2 on
usage errors (missing ``--store``, bad ``--port``).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from collections.abc import Sequence
from contextlib import nullcontext
from pathlib import Path

from repro.analysis import speedup_table
from repro.campaign import (
    CampaignInterrupted,
    ScenarioMismatch,
    available_kinds,
    available_specs,
    builtin_spec,
    kind_by_name,
    load_spec,
    merge_stores,
    repair_store,
    run_campaign,
    verify_store,
)
from repro.codes import available_codes, code_by_name
from repro.core import (
    PrecisionTarget,
    available_codesigns,
    codesign_by_name,
    sweep_architectures,
    sweep_physical_error,
)
from repro.core.results import ResultTable
from repro.parallel.faults import FaultPlan, InjectedFault, activate

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cyclone QCCD codesign reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("codes", help="list built-in codes")

    compile_parser = subparsers.add_parser(
        "compile", help="compile a code onto one or more codesigns"
    )
    compile_parser.add_argument("code", help="code name, e.g. 'BB [[72,12,6]]'")
    compile_parser.add_argument(
        "--codesigns", nargs="+", default=["baseline", "cyclone"],
        help="codesign names (default: baseline cyclone)",
    )
    compile_parser.add_argument("--output", default=None,
                                help="optional .csv/.json/.txt output path")

    memory_parser = subparsers.add_parser(
        "memory", help="run a hardware-aware memory experiment"
    )
    memory_parser.add_argument("code")
    memory_parser.add_argument("--codesign", default="cyclone")
    memory_parser.add_argument(
        "--physical-error-rates", type=float, nargs="+",
        default=[1e-4, 3e-4, 1e-3],
    )
    memory_parser.add_argument("--shots", type=int, default=200)
    memory_parser.add_argument("--rounds", type=int, default=None)
    memory_parser.add_argument("--seed", type=int, default=0)
    memory_parser.add_argument(
        "--backend", choices=("packed", "bool", "native"), default="packed",
        help="simulation/decoding kernels: bit-packed (fast, default), "
             "boolean reference, or native (compiled C decoder kernels, "
             "bit-identical to packed; falls back to packed when no C "
             "toolchain is available)",
    )
    memory_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the fused sample+decode pipeline "
             "(1: in-process, default; 0: one per CPU core; each worker "
             "samples and decodes its own shards, and results are "
             "bit-identical for any value at a fixed --shard-shots)",
    )
    memory_parser.add_argument(
        "--shard-shots", type=int, default=None,
        help="shots per pipeline shard (default: the decoder's "
             "2048-shot block size); each shard samples from its own "
             "seed-tree child, so compare runs at a fixed value — it is "
             "also the early-stop granularity",
    )
    memory_parser.add_argument(
        "--target-precision", type=float, default=None,
        help="stream each sweep point and stop once the Wilson-interval "
             "half-width of its logical error rate reaches this value "
             "(default: fixed --shots budget per point); enables the "
             "adaptive pilot/allocate/refine scheduler, which splits the "
             "global budget (--shots x points) across points by "
             "estimated variance.  Deterministic: the stop decision is "
             "evaluated on the shard-index prefix, so results are "
             "bit-identical for any --workers",
    )
    memory_parser.add_argument(
        "--relative-precision", action="store_true",
        help="interpret --target-precision as a fraction of the "
             "estimated LER instead of an absolute half-width (never "
             "stops on zero observed failures; pair with --max-shots)",
    )
    memory_parser.add_argument(
        "--max-shots", type=int, default=None,
        help="per-point shot cap for the adaptive scheduler (default: "
             "the whole global budget may concentrate on one point)",
    )
    memory_parser.add_argument(
        "--pilot-shots", type=int, default=None,
        help="pilot budget per point for the adaptive scheduler "
             "(default: --shots/4, clamped to [32, 512])",
    )
    memory_parser.add_argument("--output", default=None)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run a cross-sweep campaign under one global shot budget",
    )
    campaign_parser.add_argument(
        "spec", nargs="?", default=None,
        help="builtin spec name (see --list-specs) or path to a JSON "
             "campaign spec",
    )
    campaign_parser.add_argument(
        "--list-specs", action="store_true",
        help="list the builtin campaign specs and the registered sweep "
             "kinds (with their param schemas) and exit",
    )
    campaign_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="JSON-lines result store: completed points are appended "
             "here and resumed (never re-sampled) on the next run "
             "against the same spec and budget",
    )
    campaign_parser.add_argument(
        "--budget", type=int, default=None,
        help="override the spec's global shot budget (participates in "
             "the store key: runs at different budgets never mix)",
    )
    campaign_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes shared by every sweep of the campaign "
             "(1: in-process, default; 0: one per core; results are "
             "bit-identical for any value)",
    )
    campaign_parser.add_argument(
        "--output", default=None, metavar="DIR",
        help="write each sweep's table (and summary.json) into this "
             "directory as JSON",
    )
    campaign_parser.add_argument(
        "--summary", default=None, metavar="PATH",
        help="write the run's JSON ledger (budget, shots sampled vs "
             "reused, points resumed, targets met) to this file",
    )
    campaign_parser.add_argument(
        "--assert-no-sampling", action="store_true",
        help="exit 3 if the run sampled any shots (CI resume check: a "
             "second run against a complete store must reuse every "
             "point)",
    )
    campaign_parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock deadline: a shard that exceeds it "
             "triggers a pool respawn and a deterministic re-run of the "
             "lost shards (default: wait forever); overrides the "
             "sweeps' own knob and never enters the store key",
    )
    campaign_parser.add_argument(
        "--max-shard-retries", type=int, default=None, metavar="N",
        help="pool respawn/resubmit rounds tolerated per run before "
             "degrading to in-process execution (default 3; results "
             "are bit-identical either way)",
    )
    campaign_parser.add_argument(
        "--fault-plan", default=None, metavar="JSON|@PATH",
        help="inject a deterministic fault schedule (testing/chaos "
             "drills): JSON with any of kills, delays, "
             "tear_after_records, sigterm_after_points, "
             "kill_after_claims, suppress_heartbeats, duplicate_claim, "
             "tear_lease_after — see repro.parallel.faults; "
             "equivalently the REPRO_FAULT_PLAN environment variable",
    )
    campaign_parser.add_argument(
        "--join", action="store_true",
        help="join a multi-host campaign: become one worker among "
             "possibly many sharing --store, claiming points under "
             "TTL'd leases and heartbeating renewals; tables are "
             "byte-identical for any number of joined workers "
             "(requires --store)",
    )
    campaign_parser.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="lease identity for --join: either a full host:pid:token "
             "triple or a label used as the host part of a generated "
             "identity (default: hostname:pid:random)",
    )
    campaign_parser.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="lease heartbeat deadline for --join: a lease not renewed "
             "for this long may be reclaimed by any worker (default: "
             "the spec's lease_ttl, else 60); execution-only — never "
             "enters the store key",
    )
    campaign_parser.add_argument(
        "--claim-batch", type=int, default=None, metavar="N",
        help="points a joined worker claims per scheduling pass "
             "(default: the spec's claim_batch, else 2)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve campaigns over HTTP: a job queue where submitted "
             "specs share one store, one worker pool and one executor "
             "thread (see docs/service.md)",
    )
    serve_parser.add_argument(
        "--store", required=True, metavar="PATH",
        help="JSON-lines result store shared by every served job: "
             "finished points are cache hits for later submissions, "
             "and --join workers appending to the same file are folded "
             "in before every allocation round",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1 — the service is "
             "unauthenticated, so expose it beyond localhost only "
             "behind something that authenticates)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8731,
        help="TCP port (default: 8731; 0 picks an ephemeral port — "
             "combine with --port-file for discovery)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes in the shared pool every job runs "
             "through (1: in-process, default; 0: one per core)",
    )
    serve_parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port here after listening starts "
             "(how scripts discover a --port 0 choice)",
    )

    store_parser = subparsers.add_parser(
        "store",
        help="result-store tooling: merge per-host stores, verify "
             "consistency, repair corruption",
    )
    store_sub = store_parser.add_subparsers(dest="store_command",
                                            required=True)
    merge_parser = store_sub.add_parser(
        "merge",
        help="fold stores into one canonical file (bit-identical under "
             "any input order; lease events dropped, conflicts "
             "reported)",
    )
    merge_parser.add_argument("output", help="merged store to write")
    merge_parser.add_argument("inputs", nargs="+",
                              help="store files to fold together")
    verify_parser = store_sub.add_parser(
        "verify",
        help="check one store for corruption and lease-log violations "
             "(exit 1 with a repair hint on problems)",
    )
    verify_parser.add_argument("path", help="store file to check")
    repair_parser = store_sub.add_parser(
        "repair",
        help="rewrite a store keeping only healthy lines (drops torn "
             "fragments and corrupt records; atomic)",
    )
    repair_parser.add_argument("path", help="store file to repair")

    speedup_parser = subparsers.add_parser(
        "speedup", help="parallel vs serial schedule speedups (Figure 3)"
    )
    speedup_parser.add_argument("--codes", nargs="+", default=None)
    speedup_parser.add_argument("--output", default=None)

    return parser


def _emit(table: ResultTable, output: str | None) -> None:
    print(table.to_text())
    if output:
        path = table.save(output)
        print(f"\nSaved to {path}")


def _cmd_codes() -> int:
    table = ResultTable(
        title="Built-in codes",
        columns=["name", "n", "k", "d", "stabilizers", "edge_colorable"],
    )
    for name in available_codes():
        code = code_by_name(name)
        n, k, d = code.parameters
        table.add_row(name=name, n=n, k=k, d=d if d is not None else "?",
                      stabilizers=code.num_stabilizers,
                      edge_colorable=code.edge_colorable)
    print(table.to_text())
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    code = code_by_name(args.code)
    unknown = [name for name in args.codesigns
               if name not in available_codesigns()]
    if unknown:
        print(f"unknown codesigns: {unknown}; available: "
              f"{available_codesigns()}", file=sys.stderr)
        return 2
    designs = [codesign_by_name(name) for name in args.codesigns]
    table = sweep_architectures(code, designs)
    _emit(table, args.output)
    return 0


def _cmd_memory(args: argparse.Namespace) -> int:
    code = code_by_name(args.code)
    compiled = codesign_by_name(args.codesign).compile(code)
    target = None
    if args.target_precision is not None:
        target = PrecisionTarget(half_width=args.target_precision,
                                 relative=args.relative_precision)
    elif args.relative_precision:
        print("--relative-precision requires --target-precision",
              file=sys.stderr)
        return 2
    table = sweep_physical_error(
        code,
        round_latency_us=compiled.execution_time_us,
        physical_error_rates=args.physical_error_rates,
        shots=args.shots,
        rounds=args.rounds,
        label=f"{args.codesign}, {compiled.execution_time_us:.0f} us/round",
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
        shard_shots=args.shard_shots,
        target_precision=target,
        max_shots=args.max_shots,
        pilot_shots=args.pilot_shots,
    )
    _emit(table, args.output)
    return 0


def _print_specs_and_kinds() -> None:
    """The ``--list-specs`` listing: builtin specs, then every
    registered sweep kind with its parameter schema.  The format is
    pinned by ``tests/test_cli.py`` — spec lines are indented names
    with the sweep count, kind lines are ``name: description`` followed
    by one ``- param (type, default=...)`` line per schema entry."""
    print("builtin specs:")
    for name in available_specs():
        spec = builtin_spec(name)
        print(f"  {name} ({len(spec.sweeps)} sweeps, "
              f"budget {spec.budget})")
    print()
    print("sweep kinds:")
    for name in available_kinds():
        kind = kind_by_name(name)
        print(f"  {name}: {kind.description}")
        for param in kind.params:
            line = f"    - {param.name} ({param.type}, " \
                   f"default={param.default!r})"
            if param.doc:
                line += f": {param.doc}"
            print(line)


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.list_specs:
        _print_specs_and_kinds()
        return 0
    if args.spec is None:
        print("a spec name or path is required (or --list-specs)",
              file=sys.stderr)
        return 2
    if args.join and not args.store:
        print("--join requires --store (the shared store is the "
              "coordination medium)", file=sys.stderr)
        return 2
    try:
        spec = load_spec(args.spec)
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    plan = None
    if args.fault_plan is not None:
        try:
            plan = FaultPlan.from_arg(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"bad --fault-plan: {error}", file=sys.stderr)
            return 2

    # Graceful interrupt: the first SIGINT/SIGTERM sets a flag the
    # orchestrator polls between units of work (finalised points are
    # flushed, the pool released, exit code 5) and restores the
    # previous handlers — so a second signal kills the process the
    # ordinary way.  Off the main thread signals cannot be wired;
    # the campaign then simply runs without the graceful path.
    stop_requested = False
    previous_handlers: dict[int, object] = {}

    def _request_stop(signum, frame):
        del frame
        nonlocal stop_requested
        stop_requested = True
        for signum_, handler in previous_handlers.items():
            signal.signal(signum_, handler)

    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _request_stop)
    except ValueError:
        previous_handlers = {}

    try:
        with (activate(plan) if plan is not None else nullcontext()):
            result = run_campaign(
                spec, store=args.store, workers=args.workers,
                budget=args.budget,
                shard_timeout=args.shard_timeout,
                max_shard_retries=args.max_shard_retries,
                stop=lambda: stop_requested,
                join=args.join,
                worker_id=args.worker_id,
                lease_ttl=args.lease_ttl,
                claim_batch=args.claim_batch,
            )
    except ValueError as error:
        # Spec-level problems surfaced by the orchestrator (unknown
        # code/codesign names, non-positive budget override, ...) are
        # usage errors, not crashes.
        print(str(error), file=sys.stderr)
        return 2
    except CampaignInterrupted as error:
        print(f"interrupted: {error}", file=sys.stderr)
        if args.store:
            print(f"finalised points were flushed to {args.store}; "
                  "rerun with the same spec and store to resume",
                  file=sys.stderr)
        return 5
    except InjectedFault as error:
        # A fault plan asked for a simulated crash — report it as one.
        print(f"injected fault: {error}", file=sys.stderr)
        return 1
    except ScenarioMismatch as error:
        # A scenario_sweep point disagreed with its reference oracle:
        # the minimized scenario is already on disk, so surface the
        # replay path and exit distinctly (CI uploads the artifact).
        print(str(error), file=sys.stderr)
        if error.path is not None:
            print(f"minimized failure scenario: {error.path}",
                  file=sys.stderr)
        return 4
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - non-main thread
                pass
    for table in result.tables:
        print(table.to_text())
        print()
    print(result.summary_table().to_text())
    print(f"this run: {result.shots_sampled} shots sampled, "
          f"{result.shots_reused} reused from the store, "
          f"{result.points_reused}/{result.points_total} points resumed")
    if args.output:
        output_dir = Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)
        for sweep, table in zip(spec.sweeps, result.tables):
            table.save(output_dir / f"{sweep.name}.json")
        summary = result.summary_table()
        summary.save(output_dir / "summary.json")
        print(f"\nSaved {len(result.tables)} sweep tables + summary "
              f"to {output_dir}")
    if args.summary:
        Path(args.summary).write_text(
            json.dumps(result.stats_dict(), indent=2) + "\n")
        print(f"Wrote run ledger to {args.summary}")
    if args.assert_no_sampling and result.shots_sampled > 0:
        print(f"expected a fully resumed run but {result.shots_sampled} "
              "shots were sampled", file=sys.stderr)
        return 3
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — block until a signal drains the service.

    Exit codes: 0 after a graceful drain, 1 on a crash (bind failure,
    unexpected error), 2 on usage errors.  The import is local so the
    other subcommands never pay for it."""
    if not 0 <= args.port <= 65535:
        print(f"--port must be in [0, 65535], got {args.port}",
              file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}",
              file=sys.stderr)
        return 2
    from repro.service import JobQueue, run_service
    queue = JobQueue(args.store, workers=args.workers)
    try:
        return run_service(queue, host=args.host, port=args.port,
                           port_file=args.port_file)
    except OSError as error:
        queue.drain()
        print(f"cannot serve on {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1


def _cmd_store(args: argparse.Namespace) -> int:
    """``repro store merge|verify|repair`` — see
    :mod:`repro.campaign.coordination`.  Exit codes: 0 clean, 1
    verification problems (or merge conflicts), 2 usage errors."""
    if args.store_command == "merge":
        missing = [path for path in args.inputs if not Path(path).exists()]
        if missing:
            print(f"no such store(s): {missing}", file=sys.stderr)
            return 2
        report = merge_stores(args.inputs, args.output)
        print(f"merged {len(report['inputs'])} stores -> "
              f"{report['output']}: {report['records_written']} records "
              f"({report['records_read']} read, "
              f"{report['lines_skipped']} lines skipped)")
        if report["conflicts"]:
            print(f"CONFLICTS on {len(report['conflicts'])} key(s) — two "
                  "differing final records at the same epoch (resolved "
                  "deterministically, but the inputs disagree):",
                  file=sys.stderr)
            for key in report["conflicts"]:
                print(f"  {key}", file=sys.stderr)
            return 1
        return 0
    if args.store_command == "verify":
        report = verify_store(args.path)
        for note in report["info"]:
            print(f"note: {note}")
        print(f"{report['path']}: {report['records']} result records, "
              f"{report['leases']} lease events")
        if not report["ok"]:
            for problem in report["problems"]:
                print(f"PROBLEM: {problem}", file=sys.stderr)
            print(f"hint: `repro store repair {report['path']}` drops "
                  "corrupt lines (healthy records are kept; points "
                  "whose records are dropped re-run from their last "
                  "checkpoint on the next campaign run)",
                  file=sys.stderr)
            return 1
        print("ok")
        return 0
    if args.store_command == "repair":
        if not Path(args.path).exists():
            print(f"no such store: {args.path}", file=sys.stderr)
            return 2
        report = repair_store(args.path)
        print(f"{report['path']}: kept {report['kept']} lines, "
              f"dropped {report['dropped']}")
        return 0
    print(f"unknown store command {args.store_command!r}", file=sys.stderr)
    return 2


def _cmd_speedup(args: argparse.Namespace) -> int:
    table = speedup_table(args.codes)
    _emit(table, args.output)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "codes":
        return _cmd_codes()
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "memory":
        return _cmd_memory(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "speedup":
        return _cmd_speedup(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
